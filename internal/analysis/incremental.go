package analysis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"bitc/internal/ast"
	"bitc/internal/cfg"
	"bitc/internal/concurrent"
	"bitc/internal/factstore"
	"bitc/internal/pointsto"
	"bitc/internal/source"
	"bitc/internal/types"
)

// The incremental driver. RunWithStore produces a report byte-identical to
// Run's, but pulls per-function facts (syntactic traits, bottom-up
// summaries, per-function findings) from a content-hashed fact store and
// recomputes only what an edit actually invalidated.
//
// The key scheme, bottom of this file's pyramid first:
//
//   funcKey(f)    sha256 of f's raw source slice. Any textual edit to f
//                 changes it; moving f inside the file does not.
//   typesSig      hash of every non-function definition's raw text (structs,
//                 unions, globals, externals) plus the file name — the type
//                 environment every function is checked against.
//   envSig(f)     typesSig plus, for every name f references, what that name
//                 is (defined function with a given type scheme, global,
//                 constructor, external, or unknown). Catches edits that
//                 change f's meaning without touching f's text, e.g.
//                 deleting a callee so the call head becomes unknown.
//   compKey(c)    identity of a points-to flow component: typesSig plus
//                 every member function's funcKey and every member global's
//                 raw hash. Pins the exact constraint slice the demand
//                 solver would generate for the component (see
//                 pointsto.BuildComponents for why slicing is exact).
//   sccSig(s)     identity of a call-graph SCC for the summary engine: each
//                 member's funcKey, envSig, and compKey, plus the
//                 summaryKeys of every out-of-SCC callee — so invalidation
//                 propagates bottom-up through the call graph, and a caller
//                 is dirty whenever anything its summary was built from is.
//   summaryKey(f) sccSig of f's SCC, salted with f's name.
//   bundleKey(f)  per function, for the per-function finding bundle: the
//                 selected cacheable analyzers, funcKey, and envSig, plus
//                 f's compKey when any of them consumes points-to facts.
//                 All selected per-function analyzers' findings for f are
//                 cached as one entry — probing is one lookup per function
//                 instead of one per (analyzer, function) pair, which is
//                 what keeps a warm no-op probe cheap at 100k functions.
//   aggKey        early cutoff for the whole-program aggregation fold: every
//                 function's name, summary value hash (VHash), and
//                 entry-point bit, in definition order. An edit that
//                 recomputes some summaries to unchanged values reuses the
//                 folded lock order and race set wholesale.
//
// Derived keys are built by concatenating already-hashed 32-byte components
// with \x00-separated tags; only leaf content (source slices, free-name
// environments, component membership, SCC signatures) goes through SHA-256.
//
// Cached facts never store absolute source offsets: spans are encoded
// relative to the top-level definition that contains them
// (factstore.RelSpan) and rebased against the current parse on every hit,
// so whitespace above a function does not invalidate anything.
//
// Whole-program analyzers (race, deadlock, ffi) re-run every time, but the
// expensive substrate they stand on — points-to sets and bottom-up
// summaries — is sliced and cached, so their rerun is a cheap fold.

// RunWithStore executes the selected analyzers like Run, using store as a
// fact cache across calls. A nil store degenerates to Run. The store may be
// shared across programs; keys are content-addressed, so cross-program
// collisions are impossible and cross-edit sharing is automatic.
func RunWithStore(prog *ast.Program, info *types.Info, opts Options, store *factstore.Store) (*Report, error) {
	if store == nil {
		return Run(prog, info, opts)
	}
	selected, err := opts.Selected()
	if err != nil {
		return nil, err
	}
	store.BeginRun()

	var funcs []*ast.DefineFunc
	for _, d := range prog.Defs {
		if fn, ok := d.(*ast.DefineFunc); ok {
			funcs = append(funcs, fn)
		}
	}

	needCFG, needPts, needSums := false, false, false
	for _, a := range selected {
		needCFG = needCFG || a.NeedsCFG
		needPts = needPts || a.NeedsPointsTo
		needSums = needSums || a.NeedsSummaries
	}
	needCFG = needCFG || needPts || needSums
	needPts = needPts || needSums

	k := buildKeys(prog, info, store, funcs, needSums || needPts)

	// Lay out result slots exactly as Run would (selection order; a
	// per-function analyzer owns len(funcs) consecutive slots), then split
	// the per-function analyzers into the bundled cacheable set and the
	// always-run remainder. A per-function analyzer that consumed
	// whole-program summaries would be unsound to cache per function; none
	// exists, but fail open if one appears.
	nslots := 0
	baseSlot := map[string]int{}
	var pending []task
	var bundled, alwaysFn []*Analyzer
	bundlePts := false
	var bundleNames []string
	for _, a := range selected {
		if !a.PerFunction {
			pending = append(pending, task{analyzer: a, slot: nslots})
			nslots++
			continue
		}
		baseSlot[a.Name] = nslots
		nslots += len(funcs)
		if a.NeedsSummaries {
			alwaysFn = append(alwaysFn, a)
		} else {
			bundled = append(bundled, a)
			bundlePts = bundlePts || a.NeedsPointsTo
			bundleNames = append(bundleNames, a.Name)
		}
	}
	results := make([][]Finding, nslots)
	bundleSig := strings.Join(bundleNames, ",")

	// Probe the per-function finding bundles. A hit fills every bundled
	// analyzer's slot for that function; a miss becomes one pool task per
	// bundled analyzer. A missed function whose bundle embeds points-to
	// facts drags its whole flow component into the demand slice
	// (ptsDirty); any miss forces that function's CFG (cfgDirty).
	ptsDirty := make([]bool, len(funcs))
	cfgDirty := make([]bool, len(funcs))
	anyPtsDirty := false
	missKey := make([]string, len(funcs))
	for fi, fn := range funcs {
		if len(bundled) > 0 {
			key := "fb\x00" + bundleSig + "\x00" + k.funcKey[fi] + k.envSig[fi]
			if bundlePts {
				key += k.compKey[k.fnComp[fi]]
			}
			if v, ok := store.Get(key); ok {
				cb := v.(*cachedBundle)
				for ai, a := range bundled {
					results[baseSlot[a.Name]+fi] = decodeFindings(k.ix, cb.ByAnalyzer[ai])
				}
			} else {
				missKey[fi] = key
				for _, a := range bundled {
					pending = append(pending, task{analyzer: a, fn: fn, slot: baseSlot[a.Name] + fi})
				}
				if bundlePts {
					ptsDirty[fi] = true
					anyPtsDirty = true
				}
				cfgDirty[fi] = true
			}
		}
		for _, a := range alwaysFn {
			pending = append(pending, task{analyzer: a, fn: fn, slot: baseSlot[a.Name] + fi})
			if a.NeedsPointsTo || a.NeedsSummaries {
				ptsDirty[fi] = true
				anyPtsDirty = true
			}
			cfgDirty[fi] = true
		}
	}

	// Probe the summary caches bottom-up. A miss anywhere in an SCC dirties
	// the whole SCC (the fixpoint recomputes all members together) and pulls
	// its members into the points-to slice. Hits stay in their compact
	// cached form: decoding all of them would rebuild the whole program's
	// effects every run, and aggregation can fold the cached form directly.
	var effects map[string]*FuncEffects
	cached := make([]*cachedEffects, len(funcs))
	var dirtySCCs [][]string
	if needSums {
		effects = map[string]*FuncEffects{}
		for _, scc := range k.sccOrder {
			missed := false
			for _, m := range scc {
				mi := k.fnIndex[m]
				if v, ok := store.Get(k.sumKey[mi]); ok {
					cached[mi] = v.(*cachedEffects)
				} else {
					missed = true
				}
			}
			if missed {
				dirtySCCs = append(dirtySCCs, scc)
				for _, m := range scc {
					mi := k.fnIndex[m]
					ptsDirty[mi] = true
					anyPtsDirty = true
					cfgDirty[mi] = true
					// The whole SCC is recomputed; a partial hit must not
					// shadow the fresh result during aggregation.
					cached[mi] = nil
				}
			}
		}
	}

	// Demand points-to over the dirty components only. The slice must be a
	// union of whole components for the restricted fixpoint to be exact.
	var cfgs map[*ast.DefineFunc]*cfg.Graph
	var pts *pointsto.Result
	if needCFG {
		cfgs = make(map[*ast.DefineFunc]*cfg.Graph)
	}
	if needPts && anyPtsDirty {
		compSet := map[int]bool{}
		for fi := range funcs {
			if ptsDirty[fi] && k.fnComp[fi] >= 0 {
				compSet[k.fnComp[fi]] = true
			}
		}
		sliceFns := map[string]bool{}
		sliceGlobals := map[string]bool{}
		for id := range compSet {
			for _, m := range k.comps.FuncMembers(id) {
				sliceFns[m] = true
			}
			for _, g := range k.comps.GlobalMembers(id) {
				sliceGlobals[g] = true
			}
		}
		for _, fn := range funcs {
			if sliceFns[fn.Name] {
				cfgs[fn] = cfg.Build(fn)
			}
		}
		pts = pointsto.AnalyzeDemand(prog, info, cfgs, sliceFns, sliceGlobals)
	}
	if needCFG {
		for fi, fn := range funcs {
			if cfgDirty[fi] && cfgs[fn] == nil {
				cfgs[fn] = cfg.Build(fn)
			}
		}
	}

	// Recompute dirty SCC summaries bottom-up over the demand points-to
	// slice. Only the direct out-of-SCC callees of dirty members need their
	// clean effects decoded as the callee environment (a callee's finished
	// summary already folds everything below it). Aggregation (lock-order
	// union, entry-point race detection) is a cheap deterministic fold,
	// re-run every time over the mixed fresh-and-cached effects set.
	var summaries *Summaries
	if needSums {
		if len(dirtySCCs) > 0 {
			sb := newSummaryBuilder(info, k.cg, pts)
			sb.effects = effects
			for _, scc := range dirtySCCs {
				for _, m := range scc {
					for _, c := range k.cg.Callees[m] {
						ci := k.fnIndex[c]
						if effects[c] == nil && cached[ci] != nil {
							effects[c] = decodeEffects(k.ix, c, cached[ci])
						}
					}
				}
				sb.computeSCC(scc)
				for _, m := range scc {
					mi := k.fnIndex[m]
					enc := encodeEffects(k.ix, sb.effects[m])
					store.Put(k.sumKey[mi], enc)
					cached[mi] = enc
				}
			}
		}
		// Early cutoff for the whole-program aggregation. The fold's output
		// is a pure function of every summary's value, each function's
		// entry-point status, and the name-pinned fold order — all captured
		// below in definition order (names pin both the sorted lock-order
		// fold and the entry walk). Most edits recompute a summary to the
		// same value, so the folded lock order and race set are reused
		// wholesale instead of re-deduplicating every access in the program.
		aggParts := make([]string, 1, 3*len(funcs)+1)
		aggParts[0] = "agg"
		for fi, fn := range funcs {
			entry := "0"
			if !k.cg.CalledByOther[fn.Name] || fn.Name == "main" {
				entry = "1"
			}
			aggParts = append(aggParts, fn.Name, cached[fi].VHash, entry)
		}
		aggKey := factstore.Hash(aggParts...)
		if v, ok := store.Get(aggKey); ok {
			summaries = decodeAgg(k, effects, v.(*cachedAgg))
		} else {
			summaries = aggregateStore(prog, k, effects, cached)
			store.Put(aggKey, encodeAgg(k.ix, summaries))
		}
		summaries.SCCOrder = k.sccOrder
	}

	execTasks(prog, info, cfgs, pts, summaries, pending, results, opts.Parallelism)

	for fi := range funcs {
		if missKey[fi] == "" {
			continue
		}
		cb := &cachedBundle{ByAnalyzer: make([][]cachedFinding, len(bundled))}
		for ai, a := range bundled {
			cb.ByAnalyzer[ai] = encodeFindings(k.ix, results[baseSlot[a.Name]+fi])
		}
		store.Put(missKey[fi], cb)
	}
	return assembleReport(prog, opts, selected, results), nil
}

// aggregateStore is aggregate over the cached effects forms (by this point
// every function has one: probe hits stayed cached, dirty recomputes were
// re-encoded). It must fold in exactly the order aggregate does — sorted
// function names for ordering facts, definition order for entry points —
// so a warm report is byte-identical to a cold one. A cached span decodes
// to exactly the absolute span it was encoded from (factstore.RelSpan is a
// lossless rebase), so folding the cached form of a just-computed summary
// equals folding the summary itself.
func aggregateStore(prog *ast.Program, k *progKeys,
	effects map[string]*FuncEffects, cached []*cachedEffects) *Summaries {

	s := &Summaries{
		Graph:     k.cg,
		Effects:   effects,
		LockEdges: map[string]map[string]LockSite{},
		LockSelf:  map[string]LockSite{},
	}
	for _, name := range k.cg.Names {
		ce := cached[k.fnIndex[name]]
		if ce == nil {
			continue
		}
		if len(ce.Edges) > 0 {
			for _, a := range sortedCachedEdgeKeys(ce.Edges) {
				outs := ce.Edges[a]
				for _, b := range sortedCachedKeys(outs) {
					addEdgeSite(s.LockEdges, a, b, decodeSite(k.ix, outs[b]))
				}
			}
		}
		if len(ce.Self) > 0 {
			for _, a := range sortedCachedKeys(ce.Self) {
				if _, ok := s.LockSelf[a]; !ok {
					s.LockSelf[a] = decodeSite(k.ix, ce.Self[a])
				}
			}
		}
	}

	var accesses []concurrent.Access
	seen := map[string]bool{}
	for _, d := range prog.Defs {
		fn, ok := d.(*ast.DefineFunc)
		if !ok {
			continue
		}
		if k.cg.CalledByOther[fn.Name] && fn.Name != "main" {
			continue
		}
		ce := cached[k.fnIndex[fn.Name]]
		if ce == nil {
			continue
		}
		for _, ca := range ce.Accesses {
			ac := decodeAccess(k.ix, ca)
			if key := accessKey(ac); !seen[key] {
				seen[key] = true
				accesses = append(accesses, ac)
			}
		}
	}
	s.Races = concurrent.FindRaces(accesses)
	s.SharedAccesses = accesses

	foldAtomicFacts(s, k.cg.Names, func(name string) ([]AtomicSite, []EffectSite, []RetrySite) {
		ce := cached[k.fnIndex[name]]
		if ce == nil {
			return nil, nil, nil
		}
		var atomics []AtomicSite
		var irrev []EffectSite
		var retries []RetrySite
		for _, s := range ce.Atomics {
			if s.Nested { // the fold only keeps nested sites
				atomics = append(atomics, decodeAtomicSite(k.ix, s))
			}
		}
		for _, s := range ce.Irrev {
			if s.Atomic { // the fold only keeps atomic-context effects
				irrev = append(irrev, decodeEffectSite(k.ix, s))
			}
		}
		for _, s := range ce.Retries {
			retries = append(retries, decodeRetrySite(k.ix, s))
		}
		return atomics, irrev, retries
	})
	return s
}

func decodeSite(ix *factstore.Index, s cachedSite) LockSite {
	return LockSite{Lock: s.Lock, Span: ix.Abs(s.Span), Fn: s.Fn}
}

func sortedCachedKeys(m map[string]cachedSite) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedCachedEdgeKeys(m map[string]map[string]cachedSite) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Key computation
// ---------------------------------------------------------------------------

// progKeys carries every content key of one incremental run. Per-function
// keys live in slices indexed by the function's position in the filtered
// definition order (fnIndex maps names back to positions): at monorepo
// scale the key pipeline touches every function several times per run, and
// slice indexing is what keeps that traffic off string-keyed maps.
type progKeys struct {
	ix       *factstore.Index
	typesSig string
	fnIndex  map[string]int32 // function name -> index into the slices below
	funcKey  []string         // content hash of the function's source slice
	// traits and initTraits are the cached syntactic skeletons of function
	// definitions and global initialisers; traitsVH hashes each function's
	// traits content (not its source), feeding the graph-layer signature.
	traits     []*pointsto.Traits
	traitsVH   []string
	initTraits map[string]*pointsto.Traits
	envSig     []string
	comps      *pointsto.Components
	compKey    []string // by component id
	fnComp     []int    // flow component id, by function index
	cg         *CallGraph
	sccOrder   [][]string
	sumKey     []string
}

func buildKeys(prog *ast.Program, info *types.Info, store *factstore.Store,
	funcs []*ast.DefineFunc, needFlow bool) *progKeys {

	n := len(funcs)
	k := &progKeys{
		ix:         factstore.NewIndex(prog),
		fnIndex:    make(map[string]int32, n),
		funcKey:    make([]string, n),
		traits:     make([]*pointsto.Traits, n),
		initTraits: map[string]*pointsto.Traits{},
		envSig:     make([]string, n),
	}
	k.typesSig = k.ix.TypesSig()
	for i, fn := range funcs {
		k.fnIndex[fn.Name] = int32(i)
		k.funcKey[i] = k.ix.FuncKey(fn.Name)
	}

	// Traits: pure functions of one definition's text, keyed by its hash.
	// Each entry carries a hash of the traits *content* (VHash), so the
	// graph layer below can tell "edited" apart from "edited in a way that
	// changed the skeleton" — most edits do not.
	k.traitsVH = make([]string, n)
	initVH := map[string]string{}
	for i, fn := range funcs {
		tk := "tr\x00" + k.funcKey[i]
		if v, ok := store.Get(tk); ok {
			ct := v.(*cachedTraits)
			k.traits[i], k.traitsVH[i] = ct.T, ct.VHash
		} else {
			t := pointsto.ScanTraits(fn)
			k.traits[i] = t
			k.traitsVH[i] = traitsVHash(t)
			store.Put(tk, &cachedTraits{T: t, VHash: k.traitsVH[i]})
		}
	}
	for _, d := range prog.Defs {
		if d, ok := d.(*ast.DefineVar); ok && d.Init != nil {
			di, _ := k.ix.Def("v:" + d.Name)
			tk := "vt\x00" + di.Hash
			if v, ok := store.Get(tk); ok {
				ct := v.(*cachedTraits)
				k.initTraits[d.Name], initVH[d.Name] = ct.T, ct.VHash
			} else {
				t := pointsto.ScanExprTraits(d.Init)
				k.initTraits[d.Name] = t
				initVH[d.Name] = traitsVHash(t)
				store.Put(tk, &cachedTraits{T: t, VHash: initVH[d.Name]})
			}
		}
	}

	// envSig: the classification of every free name, under typesSig.
	external := map[string]bool{}
	for _, ext := range info.Externals {
		external[ext.Name] = true
	}
	classMemo := map[string]string{}
	classify := func(name string) string {
		if c, ok := classMemo[name]; ok {
			return c
		}
		var c string
		_, isFn := k.fnIndex[name]
		switch {
		case isFn:
			if sch := info.Funcs[name]; sch != nil {
				c = "fn:" + schemeSig(sch)
			} else {
				c = "fn:?"
			}
		case info.Globals[name] != nil:
			c = "g:" + info.Globals[name].String()
		case info.CtorOf[name] != nil:
			c = "c" // layout covered by typesSig
		case external[name]:
			c = "x" // signature covered by typesSig
		default:
			c = "?" // local, builtin, or undefined
		}
		classMemo[name] = c
		return c
	}
	parts := make([]string, 0, 64)
	for i := range funcs {
		parts = append(parts[:0], "env", k.typesSig)
		for _, name := range k.traits[i].Free {
			parts = append(parts, name, classify(name))
		}
		k.envSig[i] = factstore.Hash(parts...)
	}

	if !needFlow {
		return k
	}

	// The graph layer — call graph, SCC order, flow components — is a pure
	// function of the traits skeletons, the definition order, and the type
	// environment, all of which survive the typical edit unchanged. It is
	// cached whole under a program-level signature over exactly those
	// inputs (traits by content, not by source text, so editing a function
	// body usually hits). The cached form holds only names; the Funcs map
	// is rebuilt against the current AST on every hit, because summary
	// recomputation walks bodies through it.
	parts = append(parts[:0], "graph", k.typesSig)
	for _, d := range prog.Defs {
		switch d := d.(type) {
		case *ast.DefineFunc:
			parts = append(parts, "F", d.Name, k.traitsVH[k.fnIndex[d.Name]])
		case *ast.DefineVar:
			vh, ok := initVH[d.Name]
			if !ok {
				vh = "-"
			}
			parts = append(parts, "V", d.Name, vh)
		}
	}
	graphSig := factstore.Hash(parts...)
	if v, ok := store.Get(graphSig); ok {
		cgr := v.(*cachedGraph)
		k.cg = &CallGraph{
			Funcs:         make(map[string]*ast.DefineFunc, n),
			Names:         cgr.Names,
			Callees:       cgr.Callees,
			CalledByOther: cgr.CalledByOther,
		}
		for _, fn := range funcs {
			k.cg.Funcs[fn.Name] = fn
		}
		k.sccOrder = cgr.SCCOrder
		k.comps = cgr.Comps
	} else {
		k.comps = pointsto.BuildComponents(prog, info, func(name string) *pointsto.Traits {
			if i, ok := k.fnIndex[name]; ok {
				return k.traits[i]
			}
			return nil
		}, k.initTraits)
		k.cg = NewCallGraphFromCallees(prog, func(name string) []string {
			return k.traits[k.fnIndex[name]].Called
		})
		k.sccOrder = k.cg.SCCs()
		store.Put(graphSig, &cachedGraph{
			Names:         k.cg.Names,
			Callees:       k.cg.Callees,
			CalledByOther: k.cg.CalledByOther,
			SCCOrder:      k.sccOrder,
			Comps:         k.comps,
		})
	}

	// Component and summary keys are rebuilt every run even on a graph hit:
	// they embed source hashes (funcKey, envSig), which the graph signature
	// deliberately does not.
	k.compKey = make([]string, k.comps.Len())
	for id := 0; id < k.comps.Len(); id++ {
		parts = append(parts[:0], "comp", k.typesSig)
		for _, m := range k.comps.FuncMembers(id) {
			parts = append(parts, "f", m, k.funcKey[k.fnIndex[m]])
		}
		for _, g := range k.comps.GlobalMembers(id) {
			di, ok := k.ix.Def("v:" + g)
			if !ok {
				parts = append(parts, "g", g, "undeclared")
				continue
			}
			parts = append(parts, "g", g, di.Hash)
		}
		k.compKey[id] = factstore.Hash(parts...)
	}
	k.fnComp = make([]int, n)
	for i, fn := range funcs {
		k.fnComp[i] = k.comps.OfFunc(fn.Name)
	}

	// Summary keys bottom-up: each SCC's signature folds its members' keys
	// with the finished summaryKeys of all out-of-SCC callees.
	k.sumKey = make([]string, n)
	var calleeKeys []string
	for _, scc := range k.sccOrder {
		// Most SCCs are singletons; skip the membership map for those.
		var inSCC map[string]bool
		if len(scc) > 1 {
			inSCC = make(map[string]bool, len(scc))
			for _, m := range scc {
				inSCC[m] = true
			}
		}
		parts = append(parts[:0], "scc", k.typesSig)
		calleeKeys = calleeKeys[:0]
		for _, m := range scc { // scc is sorted
			mi := k.fnIndex[m]
			parts = append(parts, m, k.funcKey[mi], k.envSig[mi], k.compKey[k.fnComp[mi]])
			for _, c := range k.cg.Callees[m] {
				if inSCC != nil && inSCC[c] || c == m {
					continue
				}
				calleeKeys = append(calleeKeys, k.sumKey[k.fnIndex[c]])
			}
		}
		sccSig := factstore.Hash(append(parts, sortDedup(calleeKeys)...)...)
		for _, m := range scc {
			k.sumKey[k.fnIndex[m]] = "sum\x00" + m + "\x00" + sccSig
		}
	}
	return k
}

// cachedTraits pairs one definition's traits with a hash of their content,
// so graph-level signatures can depend on what the skeleton *is* rather
// than on the source text it came from.
type cachedTraits struct {
	T     *pointsto.Traits
	VHash string
}

func traitsVHash(t *pointsto.Traits) string {
	parts := make([]string, 0, len(t.Free)+len(t.Called)+len(t.Bound)+6)
	parts = append(parts, "tv", strconv.Itoa(len(t.Free)))
	parts = append(parts, t.Free...)
	parts = append(parts, strconv.Itoa(len(t.Called)))
	parts = append(parts, t.Called...)
	parts = append(parts, strconv.Itoa(len(t.Bound)))
	parts = append(parts, t.Bound...)
	parts = append(parts, bit(t.HasLambda), bit(t.ExoticCall))
	return factstore.Hash(parts...)
}

// cachedGraph is the graph layer of one program shape: everything in it is
// names only (no AST pointers, no spans), so it stays valid across
// re-parses for as long as the graph signature matches.
type cachedGraph struct {
	Names         []string
	Callees       map[string][]string
	CalledByOther map[string]bool
	SCCOrder      [][]string
	Comps         *pointsto.Components
}

// schemeSig prints a type scheme canonically: constraints in quantifier
// order plus the canonical type string (Type.String renames variables
// per-call, so the result is independent of the unifier's global counter).
func schemeSig(s *types.Scheme) string {
	var b strings.Builder
	for _, v := range s.Vars {
		fmt.Fprintf(&b, "%d,", v.Constraint)
	}
	b.WriteByte('|')
	b.WriteString(s.Type.String())
	return b.String()
}

func sortDedup(ss []string) []string {
	if len(ss) < 2 {
		return ss
	}
	sort.Strings(ss)
	out := ss[:1]
	for _, s := range ss[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Cached encodings (all spans relative, rebased on every decode)
// ---------------------------------------------------------------------------

type cachedSite struct {
	Lock string
	Span factstore.RelSpan
	Fn   string
}

type cachedAccess struct {
	Global  string
	Field   string
	Write   bool
	Span    factstore.RelSpan
	Func    string
	Lockset []string
	Spawned bool
}

type cachedAtomicSite struct {
	Span   factstore.RelSpan
	Fn     string
	Nested bool
}

type cachedEffectSite struct {
	Kind   string
	Name   string
	Span   factstore.RelSpan
	Fn     string
	Atomic bool
}

type cachedRetrySite struct {
	Span factstore.RelSpan
	Fn   string
	Cond string
}

// cachedEffects is FuncEffects with relative spans.
type cachedEffects struct {
	Acquires map[string]cachedSite
	Edges    map[string]map[string]cachedSite
	Self     map[string]cachedSite
	Accesses []cachedAccess
	Atomics  []cachedAtomicSite
	Irrev    []cachedEffectSite
	Retries  []cachedRetrySite
	// VHash is a content hash of the encoded value itself, not of its
	// derivation: summaries recomputed to the same value share it across
	// edits, which is what lets the aggregation early cutoff fire.
	VHash string
}

func encodeSite(ix *factstore.Index, s LockSite) cachedSite {
	return cachedSite{Lock: s.Lock, Span: ix.Rel(s.Span), Fn: s.Fn}
}

func encodeAccess(ix *factstore.Index, ac concurrent.Access) cachedAccess {
	return cachedAccess{
		Global: ac.Global, Field: ac.Field, Write: ac.Write,
		Span: ix.Rel(ac.Span), Func: ac.Func,
		Lockset: ac.Lockset, Spawned: ac.Spawned,
	}
}

func decodeAccess(ix *factstore.Index, ca cachedAccess) concurrent.Access {
	return concurrent.Access{
		Global: ca.Global, Field: ca.Field, Write: ca.Write,
		Span: ix.Abs(ca.Span), Func: ca.Func,
		Lockset: ca.Lockset, Spawned: ca.Spawned,
	}
}

func encodeAtomicSite(ix *factstore.Index, s AtomicSite) cachedAtomicSite {
	return cachedAtomicSite{Span: ix.Rel(s.Span), Fn: s.Fn, Nested: s.Nested}
}

func decodeAtomicSite(ix *factstore.Index, s cachedAtomicSite) AtomicSite {
	return AtomicSite{Span: ix.Abs(s.Span), Fn: s.Fn, Nested: s.Nested}
}

func encodeEffectSite(ix *factstore.Index, s EffectSite) cachedEffectSite {
	return cachedEffectSite{Kind: s.Kind, Name: s.Name, Span: ix.Rel(s.Span), Fn: s.Fn, Atomic: s.Atomic}
}

func decodeEffectSite(ix *factstore.Index, s cachedEffectSite) EffectSite {
	return EffectSite{Kind: s.Kind, Name: s.Name, Span: ix.Abs(s.Span), Fn: s.Fn, Atomic: s.Atomic}
}

func encodeRetrySite(ix *factstore.Index, s RetrySite) cachedRetrySite {
	return cachedRetrySite{Span: ix.Rel(s.Span), Fn: s.Fn, Cond: s.Cond}
}

func decodeRetrySite(ix *factstore.Index, s cachedRetrySite) RetrySite {
	return RetrySite{Span: ix.Abs(s.Span), Fn: s.Fn, Cond: s.Cond}
}

func encodeEffects(ix *factstore.Index, eff *FuncEffects) *cachedEffects {
	// Maps are allocated only when non-empty (most functions acquire no
	// locks); the decoder mirrors this, and every consumer of FuncEffects
	// treats a nil map as empty.
	ce := &cachedEffects{}
	if len(eff.Acquires) > 0 {
		ce.Acquires = make(map[string]cachedSite, len(eff.Acquires))
		for l, s := range eff.Acquires {
			ce.Acquires[l] = encodeSite(ix, s)
		}
	}
	if len(eff.Edges) > 0 {
		ce.Edges = make(map[string]map[string]cachedSite, len(eff.Edges))
		for a, outs := range eff.Edges {
			m := make(map[string]cachedSite, len(outs))
			for b, s := range outs {
				m[b] = encodeSite(ix, s)
			}
			ce.Edges[a] = m
		}
	}
	if len(eff.Self) > 0 {
		ce.Self = make(map[string]cachedSite, len(eff.Self))
		for l, s := range eff.Self {
			ce.Self[l] = encodeSite(ix, s)
		}
	}
	if len(eff.Accesses) > 0 {
		ce.Accesses = make([]cachedAccess, len(eff.Accesses))
		for i, ac := range eff.Accesses {
			ce.Accesses[i] = encodeAccess(ix, ac)
		}
	}
	if len(eff.Atomics) > 0 {
		ce.Atomics = make([]cachedAtomicSite, len(eff.Atomics))
		for i, s := range eff.Atomics {
			ce.Atomics[i] = encodeAtomicSite(ix, s)
		}
	}
	if len(eff.Irrev) > 0 {
		ce.Irrev = make([]cachedEffectSite, len(eff.Irrev))
		for i, s := range eff.Irrev {
			ce.Irrev[i] = encodeEffectSite(ix, s)
		}
	}
	if len(eff.Retries) > 0 {
		ce.Retries = make([]cachedRetrySite, len(eff.Retries))
		for i, s := range eff.Retries {
			ce.Retries[i] = encodeRetrySite(ix, s)
		}
	}
	ce.VHash = effectsVHash(ce)
	return ce
}

// effectsVHash hashes a cached summary's value under a tagged, length-
// delimited serialisation (factstore.Hash delimits every part, the tags
// separate the sections), with map sections in sorted key order so equal
// values always hash equally.
func effectsVHash(ce *cachedEffects) string {
	parts := make([]string, 1, 8+8*len(ce.Accesses))
	parts[0] = "effv"
	site := func(tag, key string, s cachedSite) {
		parts = append(parts, tag, key, s.Lock, s.Fn, relStr(s.Span))
	}
	for _, l := range sortedCachedKeys(ce.Acquires) {
		site("a", l, ce.Acquires[l])
	}
	for _, a := range sortedCachedEdgeKeys(ce.Edges) {
		outs := ce.Edges[a]
		for _, b := range sortedCachedKeys(outs) {
			site("e", a+"\x00"+b, outs[b])
		}
	}
	for _, l := range sortedCachedKeys(ce.Self) {
		site("s", l, ce.Self[l])
	}
	for _, ac := range ce.Accesses {
		parts = append(parts, "c", ac.Global, ac.Field, bit(ac.Write),
			relStr(ac.Span), ac.Func, strconv.Itoa(len(ac.Lockset)))
		parts = append(parts, ac.Lockset...)
		parts = append(parts, bit(ac.Spawned))
	}
	for _, s := range ce.Atomics {
		parts = append(parts, "t", relStr(s.Span), s.Fn, bit(s.Nested))
	}
	for _, s := range ce.Irrev {
		parts = append(parts, "i", s.Kind, s.Name, relStr(s.Span), s.Fn, bit(s.Atomic))
	}
	for _, s := range ce.Retries {
		parts = append(parts, "r", relStr(s.Span), s.Fn, s.Cond)
	}
	return factstore.Hash(parts...)
}

func relStr(r factstore.RelSpan) string {
	return r.Owner + "\x00" + strconv.Itoa(r.Start) + "\x00" + strconv.Itoa(r.End)
}

func bit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func decodeEffects(ix *factstore.Index, name string, ce *cachedEffects) *FuncEffects {
	eff := &FuncEffects{Name: name}
	if len(ce.Acquires) > 0 {
		eff.Acquires = make(map[string]LockSite, len(ce.Acquires))
		for l, s := range ce.Acquires {
			eff.Acquires[l] = LockSite{Lock: s.Lock, Span: ix.Abs(s.Span), Fn: s.Fn}
		}
	}
	if len(ce.Edges) > 0 {
		eff.Edges = make(map[string]map[string]LockSite, len(ce.Edges))
		for a, outs := range ce.Edges {
			m := make(map[string]LockSite, len(outs))
			for b, s := range outs {
				m[b] = LockSite{Lock: s.Lock, Span: ix.Abs(s.Span), Fn: s.Fn}
			}
			eff.Edges[a] = m
		}
	}
	if len(ce.Self) > 0 {
		eff.Self = make(map[string]LockSite, len(ce.Self))
		for l, s := range ce.Self {
			eff.Self[l] = LockSite{Lock: s.Lock, Span: ix.Abs(s.Span), Fn: s.Fn}
		}
	}
	if len(ce.Accesses) > 0 {
		eff.Accesses = make([]concurrent.Access, len(ce.Accesses))
		for i, ac := range ce.Accesses {
			eff.Accesses[i] = decodeAccess(ix, ac)
		}
	}
	if len(ce.Atomics) > 0 {
		eff.Atomics = make([]AtomicSite, len(ce.Atomics))
		for i, s := range ce.Atomics {
			eff.Atomics[i] = decodeAtomicSite(ix, s)
		}
	}
	if len(ce.Irrev) > 0 {
		eff.Irrev = make([]EffectSite, len(ce.Irrev))
		for i, s := range ce.Irrev {
			eff.Irrev[i] = decodeEffectSite(ix, s)
		}
	}
	if len(ce.Retries) > 0 {
		eff.Retries = make([]RetrySite, len(ce.Retries))
		for i, s := range ce.Retries {
			eff.Retries[i] = decodeRetrySite(ix, s)
		}
	}
	return eff
}

// cachedAgg is the folded output of aggregation: the program-wide lock
// order, self-deadlock sites, and race set, with relative spans. It is
// keyed by every function's summary VHash and entry status in definition
// order, so one entry serves every edit that leaves all summary values
// unchanged.
type cachedAgg struct {
	Edges   []cachedAggEdge
	Self    []cachedAggSelf
	Races   []cachedRace
	Shared  []cachedAccess
	Nested  []cachedAtomicSite
	Effects []cachedEffectSite
	Retries []cachedRetrySite
}

type cachedAggEdge struct {
	A, B string
	Site cachedSite
}

type cachedAggSelf struct {
	Lock string
	Site cachedSite
}

type cachedRace struct {
	Location string
	A, B     cachedAccess
}

func encodeAgg(ix *factstore.Index, s *Summaries) *cachedAgg {
	ca := &cachedAgg{}
	for _, a := range sortedEdgeKeys(s.LockEdges) {
		outs := s.LockEdges[a]
		for _, b := range sortedKeys(outs) {
			ca.Edges = append(ca.Edges, cachedAggEdge{A: a, B: b, Site: encodeSite(ix, outs[b])})
		}
	}
	for _, a := range sortedKeys(s.LockSelf) {
		ca.Self = append(ca.Self, cachedAggSelf{Lock: a, Site: encodeSite(ix, s.LockSelf[a])})
	}
	if len(s.Races) > 0 {
		ca.Races = make([]cachedRace, len(s.Races))
		for i, r := range s.Races {
			ca.Races[i] = cachedRace{
				Location: r.Location,
				A:        encodeAccess(ix, r.A),
				B:        encodeAccess(ix, r.B),
			}
		}
	}
	if len(s.SharedAccesses) > 0 {
		ca.Shared = make([]cachedAccess, len(s.SharedAccesses))
		for i, ac := range s.SharedAccesses {
			ca.Shared[i] = encodeAccess(ix, ac)
		}
	}
	if len(s.NestedAtomics) > 0 {
		ca.Nested = make([]cachedAtomicSite, len(s.NestedAtomics))
		for i, a := range s.NestedAtomics {
			ca.Nested[i] = encodeAtomicSite(ix, a)
		}
	}
	if len(s.AtomicEffects) > 0 {
		ca.Effects = make([]cachedEffectSite, len(s.AtomicEffects))
		for i, e := range s.AtomicEffects {
			ca.Effects[i] = encodeEffectSite(ix, e)
		}
	}
	if len(s.RetryLoops) > 0 {
		ca.Retries = make([]cachedRetrySite, len(s.RetryLoops))
		for i, r := range s.RetryLoops {
			ca.Retries[i] = encodeRetrySite(ix, r)
		}
	}
	return ca
}

func decodeAgg(k *progKeys, effects map[string]*FuncEffects, ca *cachedAgg) *Summaries {
	s := &Summaries{
		Graph:     k.cg,
		Effects:   effects,
		LockEdges: map[string]map[string]LockSite{},
		LockSelf:  map[string]LockSite{},
	}
	for _, e := range ca.Edges {
		m := s.LockEdges[e.A]
		if m == nil {
			m = map[string]LockSite{}
			s.LockEdges[e.A] = m
		}
		m[e.B] = decodeSite(k.ix, e.Site)
	}
	for _, e := range ca.Self {
		s.LockSelf[e.Lock] = decodeSite(k.ix, e.Site)
	}
	if len(ca.Races) > 0 {
		s.Races = make([]concurrent.Race, len(ca.Races))
		for i, r := range ca.Races {
			s.Races[i] = concurrent.Race{
				Location: r.Location,
				A:        decodeAccess(k.ix, r.A),
				B:        decodeAccess(k.ix, r.B),
			}
		}
	}
	if len(ca.Shared) > 0 {
		s.SharedAccesses = make([]concurrent.Access, len(ca.Shared))
		for i, ac := range ca.Shared {
			s.SharedAccesses[i] = decodeAccess(k.ix, ac)
		}
	}
	if len(ca.Nested) > 0 {
		s.NestedAtomics = make([]AtomicSite, len(ca.Nested))
		for i, a := range ca.Nested {
			s.NestedAtomics[i] = decodeAtomicSite(k.ix, a)
		}
	}
	if len(ca.Effects) > 0 {
		s.AtomicEffects = make([]EffectSite, len(ca.Effects))
		for i, e := range ca.Effects {
			s.AtomicEffects[i] = decodeEffectSite(k.ix, e)
		}
	}
	if len(ca.Retries) > 0 {
		s.RetryLoops = make([]RetrySite, len(ca.Retries))
		for i, r := range ca.Retries {
			s.RetryLoops[i] = decodeRetrySite(k.ix, r)
		}
	}
	return s
}

// cachedBundle holds every bundled per-function analyzer's findings for one
// function, aligned with the bundled analyzers in selection order (the
// bundle key embeds the analyzer list, so alignment cannot drift).
type cachedBundle struct {
	ByAnalyzer [][]cachedFinding
}

type cachedRelated struct {
	Span    factstore.RelSpan
	Message string
	File    string
}

// cachedFinding is a Finding with relative spans. Messages embed names and
// rendered values but never absolute offsets (renderers derive positions
// from the span at print time), so they cache verbatim.
type cachedFinding struct {
	Code     string
	Severity source.Severity
	Span     factstore.RelSpan
	Message  string
	Analyzer string
	Related  []cachedRelated
}

func encodeFindings(ix *factstore.Index, fs []Finding) []cachedFinding {
	out := make([]cachedFinding, len(fs))
	for i, f := range fs {
		cf := cachedFinding{
			Code: f.Code, Severity: f.Severity, Span: ix.Rel(f.Span),
			Message: f.Message, Analyzer: f.Analyzer,
		}
		for _, r := range f.Related {
			cf.Related = append(cf.Related, cachedRelated{
				Span: ix.Rel(r.Span), Message: r.Message, File: r.File,
			})
		}
		out[i] = cf
	}
	return out
}

func decodeFindings(ix *factstore.Index, cfs []cachedFinding) []Finding {
	if len(cfs) == 0 {
		return nil
	}
	out := make([]Finding, len(cfs))
	for i, cf := range cfs {
		f := Finding{
			Code: cf.Code, Severity: cf.Severity, Span: ix.Abs(cf.Span),
			Message: cf.Message, Analyzer: cf.Analyzer,
		}
		for _, r := range cf.Related {
			f.Related = append(f.Related, Related{
				Span: ix.Abs(r.Span), Message: r.Message, File: r.File,
			})
		}
		out[i] = f
	}
	return out
}
