package analysis_test

import (
	"strings"
	"testing"

	"bitc/internal/analysis"
	"bitc/internal/parser"
	"bitc/internal/source"
	"bitc/internal/types"
)

// runOn parses, checks, and analyses src with all analyzers enabled.
func runOn(t *testing.T, src string) *analysis.Report {
	t.Helper()
	return runOpts(t, src, analysis.Options{})
}

func runOpts(t *testing.T, src string, opts analysis.Options) *analysis.Report {
	t.Helper()
	prog, diags := parser.Parse("t.bitc", src)
	if diags.HasErrors() {
		t.Fatalf("parse: %v", diags)
	}
	info, cdiags := types.Check(prog)
	if cdiags.HasErrors() {
		t.Fatalf("check: %v", cdiags)
	}
	rep, err := analysis.Run(prog, info, opts)
	if err != nil {
		t.Fatalf("analysis: %v", err)
	}
	return rep
}

func codesOf(rep *analysis.Report) []string {
	var out []string
	for _, f := range rep.Findings {
		out = append(out, f.Code)
	}
	return out
}

func hasCode(rep *analysis.Report, code string) bool {
	for _, f := range rep.Findings {
		if f.Code == code {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// race (ported lockset adapter)
// ---------------------------------------------------------------------------

const counterHeader = `
(defstruct cell (v int64))
(define counter cell (make cell :v 0))
`

func TestRacePositive(t *testing.T) {
	rep := runOn(t, counterHeader+`
	  (define (bump) unit
	    (set-field! counter v (+ (field counter v) 1)))
	  (define (main) unit
	    (let ((t1 (spawn (bump))) (t2 (spawn (bump))))
	      (join t1) (join t2)))`)
	if !hasCode(rep, analysis.CodeRace) {
		t.Fatalf("race not reported: %v", codesOf(rep))
	}
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeRace {
			if len(f.Related) == 0 {
				t.Error("race finding has no related span")
			}
			if !strings.Contains(f.Message, "counter.v") {
				t.Errorf("message = %q", f.Message)
			}
		}
	}
}

func TestRaceNegative(t *testing.T) {
	rep := runOn(t, counterHeader+`
	  (define (bump) unit
	    (with-lock m (set-field! counter v (+ (field counter v) 1))))
	  (define (main) unit
	    (let ((t1 (spawn (bump))) (t2 (spawn (bump))))
	      (join t1) (join t2)))`)
	if hasCode(rep, analysis.CodeRace) {
		t.Fatalf("false race: %v", rep.Findings)
	}
}

// ---------------------------------------------------------------------------
// escape (ported region adapter)
// ---------------------------------------------------------------------------

func TestEscapePositive(t *testing.T) {
	rep := runOn(t, `
	  (defstruct msg (v int64))
	  (define (leak) msg
	    (with-region r
	      (alloc-in r (make msg :v 1))))`)
	if !hasCode(rep, analysis.CodeEscape) {
		t.Fatalf("escape not reported: %v", codesOf(rep))
	}
}

func TestEscapeNegative(t *testing.T) {
	rep := runOn(t, `
	  (defstruct msg (v int64))
	  (define (f) int64
	    (with-region r
	      (let ((m (alloc-in r (make msg :v 1))))
	        (field m v))))`)
	if hasCode(rep, analysis.CodeEscape) {
		t.Fatalf("false escape: %v", rep.Findings)
	}
}

// ---------------------------------------------------------------------------
// deadlock
// ---------------------------------------------------------------------------

func TestDeadlockInversionPositive(t *testing.T) {
	rep := runOn(t, counterHeader+`
	  (define (ab) unit
	    (with-lock a (with-lock b (set-field! counter v 1))))
	  (define (ba) unit
	    (with-lock b (with-lock a (set-field! counter v 2))))
	  (define (main) unit
	    (let ((t1 (spawn (ab))) (t2 (spawn (ba))))
	      (join t1) (join t2)))`)
	if !hasCode(rep, analysis.CodeLockOrder) {
		t.Fatalf("ABBA inversion not reported: %v", codesOf(rep))
	}
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeLockOrder && len(f.Related) == 0 {
			t.Error("inversion finding lacks the reverse-order site")
		}
	}
}

func TestDeadlockConsistentOrderNegative(t *testing.T) {
	rep := runOn(t, counterHeader+`
	  (define (f) unit
	    (with-lock a (with-lock b (set-field! counter v 1))))
	  (define (g) unit
	    (with-lock a (with-lock b (set-field! counter v 2))))
	  (define (main) unit
	    (let ((t1 (spawn (f))) (t2 (spawn (g))))
	      (join t1) (join t2)))`)
	if hasCode(rep, analysis.CodeLockOrder) {
		t.Fatalf("false inversion: %v", rep.Findings)
	}
}

func TestDeadlockInterprocedural(t *testing.T) {
	// The second lock is taken inside a callee.
	rep := runOn(t, counterHeader+`
	  (define (inner-b) unit (with-lock b (set-field! counter v 1)))
	  (define (inner-a) unit (with-lock a (set-field! counter v 2)))
	  (define (ab) unit (with-lock a (inner-b)))
	  (define (ba) unit (with-lock b (inner-a)))
	  (define (main) unit
	    (begin (ab) (ba)))`)
	if !hasCode(rep, analysis.CodeLockOrder) {
		t.Fatalf("interprocedural inversion missed: %v", codesOf(rep))
	}
}

func TestRaceSecondAccessInHelper(t *testing.T) {
	// The spawned thread's write happens two calls deep; the summary-based
	// analysis must surface it against main's direct write, with the helper's
	// access as the related span.
	rep := runOn(t, counterHeader+`
	  (define (store-it) unit (set-field! counter v 2))
	  (define (worker) unit (store-it))
	  (define (main) unit
	    (let ((t1 (spawn (worker))))
	      (set-field! counter v 1)
	      (join t1)))`)
	if !hasCode(rep, analysis.CodeRace) {
		t.Fatalf("interprocedural race missed: %v", codesOf(rep))
	}
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeRace {
			if len(f.Related) == 0 {
				t.Error("race finding has no related span")
			}
			if !strings.Contains(f.Message, "counter.v") {
				t.Errorf("message = %q", f.Message)
			}
		}
	}
}

func TestRaceHelperLockNegative(t *testing.T) {
	// Same shape, but the helper's write is guarded by the same lock as
	// main's: summaries must propagate the callee's lockset.
	rep := runOn(t, counterHeader+`
	  (define (store-it) unit (with-lock m (set-field! counter v 2)))
	  (define (worker) unit (store-it))
	  (define (main) unit
	    (let ((t1 (spawn (worker))))
	      (with-lock m (set-field! counter v 1))
	      (join t1)))`)
	if hasCode(rep, analysis.CodeRace) {
		t.Fatalf("false interprocedural race: %v", rep.Findings)
	}
}

func TestDeadlockCycleAcrossTwoFunctions(t *testing.T) {
	// Each half of the a->b / b->a cycle spans a caller/callee pair; the
	// finding must carry the reverse-order site as a related span.
	rep := runOn(t, counterHeader+`
	  (define (take-b) unit (with-lock b (set-field! counter v 1)))
	  (define (take-a) unit (with-lock a (set-field! counter v 2)))
	  (define (ab) unit (with-lock a (take-b)))
	  (define (ba) unit (with-lock b (take-a)))
	  (define (main) unit
	    (begin (ab) (ba)))`)
	if !hasCode(rep, analysis.CodeLockOrder) {
		t.Fatalf("two-function lock cycle missed: %v", codesOf(rep))
	}
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeLockOrder && len(f.Related) == 0 {
			t.Error("cycle finding lacks the reverse-order related span")
		}
	}
}

func TestDeadlockSelfAcquire(t *testing.T) {
	rep := runOn(t, counterHeader+`
	  (define (f) unit
	    (with-lock a (with-lock a (set-field! counter v 1))))`)
	if !hasCode(rep, analysis.CodeLockSelf) {
		t.Fatalf("self-deadlock not reported: %v", codesOf(rep))
	}
}

// ---------------------------------------------------------------------------
// definit
// ---------------------------------------------------------------------------

func TestDefInitPositive(t *testing.T) {
	rep := runOn(t, `
	  (define (f) int64
	    (let ((mutable x 0))
	      (println x)
	      (set! x 5)
	      x))`)
	if !hasCode(rep, analysis.CodeDefInit) {
		t.Fatalf("placeholder read not reported: %v", codesOf(rep))
	}
}

func TestDefInitNegativeAssignFirst(t *testing.T) {
	rep := runOn(t, `
	  (define (f) int64
	    (let ((mutable x 0))
	      (set! x 5)
	      (println x)
	      x))`)
	if hasCode(rep, analysis.CodeDefInit) {
		t.Fatalf("false definit: %v", rep.Findings)
	}
}

func TestDefInitAccumulatorIdiomNegative(t *testing.T) {
	// Loop accumulators and induction variables read the placeholder
	// meaningfully; both the self-update and the loop exemption apply.
	rep := runOn(t, `
	  (define (sum (n int64)) int64
	    (let ((mutable i 0) (mutable acc 0))
	      (while (< i n)
	        (set! acc (+ acc i))
	        (set! i (+ i 1)))
	      acc))`)
	if hasCode(rep, analysis.CodeDefInit) {
		t.Fatalf("accumulator idiom flagged: %v", rep.Findings)
	}
}

func TestDefInitBranchOnlyAssignPositive(t *testing.T) {
	// Assignment on one branch only is not definite.
	rep := runOn(t, `
	  (define (f (c bool)) int64
	    (let ((mutable x 0))
	      (if c (set! x 1) ())
	      (println x)
	      x))`)
	if !hasCode(rep, analysis.CodeDefInit) {
		t.Fatalf("branch-only assignment not caught: %v", codesOf(rep))
	}
}

func TestDefInitBothBranchesAssignNegative(t *testing.T) {
	rep := runOn(t, `
	  (define (f (c bool)) int64
	    (let ((mutable x 0))
	      (if c (set! x 1) (set! x 2))
	      (println x)
	      x))`)
	if hasCode(rep, analysis.CodeDefInit) {
		t.Fatalf("definite branch assignment flagged: %v", rep.Findings)
	}
}

func TestDefInitMeaningfulInitNegative(t *testing.T) {
	// A non-placeholder initialiser is a real value; reads are fine.
	rep := runOn(t, `
	  (define (f) int64
	    (let ((mutable x 41))
	      (println x)
	      (set! x 5)
	      x))`)
	if hasCode(rep, analysis.CodeDefInit) {
		t.Fatalf("meaningful init flagged: %v", rep.Findings)
	}
}

// ---------------------------------------------------------------------------
// truncate
// ---------------------------------------------------------------------------

func TestTruncatePositive(t *testing.T) {
	rep := runOn(t, `
	  (define (f (x int64)) uint8
	    (cast uint8 x))`)
	if !hasCode(rep, analysis.CodeTruncate) {
		t.Fatalf("narrowing cast not reported: %v", codesOf(rep))
	}
}

func TestTruncateNegativeWiden(t *testing.T) {
	rep := runOn(t, `
	  (define (f (x uint16)) int64
	    (cast int64 x))`)
	if hasCode(rep, analysis.CodeTruncate) {
		t.Fatalf("widening cast flagged: %v", rep.Findings)
	}
}

func TestTruncateNegativeLiteralFits(t *testing.T) {
	rep := runOn(t, `
	  (define (f) uint8
	    (cast uint8 255))`)
	if hasCode(rep, analysis.CodeTruncate) {
		t.Fatalf("fitting literal flagged: %v", rep.Findings)
	}
}

func TestTruncateNegativeMasked(t *testing.T) {
	// Value-range lite: a masked value fits the narrow target.
	rep := runOn(t, `
	  (define (f (x int64)) uint8
	    (cast uint8 (bitand x 255)))`)
	if hasCode(rep, analysis.CodeTruncate) {
		t.Fatalf("masked cast flagged: %v", rep.Findings)
	}
}

func TestTruncateSignedToUnsignedPositive(t *testing.T) {
	// Same width, signed source: negatives do not fit the unsigned target.
	rep := runOn(t, `
	  (define (f (x int32)) uint32
	    (cast uint32 x))`)
	if !hasCode(rep, analysis.CodeTruncate) {
		t.Fatalf("sign-losing cast not reported: %v", codesOf(rep))
	}
}

func TestTruncateFloatNote(t *testing.T) {
	rep := runOn(t, `
	  (define (f (x float64)) int64
	    (cast int64 x))`)
	if !hasCode(rep, analysis.CodeFloatTrunc) {
		t.Fatalf("float->int note missing: %v", codesOf(rep))
	}
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeFloatTrunc && f.Severity != source.Note {
			t.Errorf("float trunc severity = %v, want note", f.Severity)
		}
	}
}

func TestTruncateBranchRefinedNegative(t *testing.T) {
	// Inside the guards x is known to lie in [0, 255], so the narrowing
	// cast cannot truncate.
	rep := runOn(t, `
	  (define (f (x int64)) uint8
	    (if (< x 256)
	        (if (>= x 0) (cast uint8 x) (cast uint8 0))
	        (cast uint8 0)))`)
	if hasCode(rep, analysis.CodeTruncate) {
		t.Fatalf("branch-refined cast flagged: %v", rep.Findings)
	}
}

func TestTruncateBranchTooWidePositive(t *testing.T) {
	// The guard narrows x, but not enough for the target type.
	rep := runOn(t, `
	  (define (f (x int64)) uint8
	    (if (< x 1000)
	        (if (>= x 0) (cast uint8 x) (cast uint8 0))
	        (cast uint8 0)))`)
	if !hasCode(rep, analysis.CodeTruncate) {
		t.Fatalf("under-narrowed cast not reported: %v", codesOf(rep))
	}
}

func TestTruncateAndGuardNegative(t *testing.T) {
	// Refinement looks through short-circuit conjunctions on the true edge.
	rep := runOn(t, `
	  (define (f (x int64)) uint8
	    (if (and (>= x 0) (< x 256))
	        (cast uint8 x)
	        (cast uint8 0)))`)
	if hasCode(rep, analysis.CodeTruncate) {
		t.Fatalf("and-guarded cast flagged: %v", rep.Findings)
	}
}

func TestTruncateAssignedRangeNegative(t *testing.T) {
	// The last assignment dominates the cast and its value fits.
	rep := runOn(t, `
	  (define (f (x int64)) uint8
	    (let ((mutable y 0))
	      (set! y (bitand x 127))
	      (cast uint8 y)))`)
	if hasCode(rep, analysis.CodeTruncate) {
		t.Fatalf("range-assigned cast flagged: %v", rep.Findings)
	}
}

// ---------------------------------------------------------------------------
// deadstore
// ---------------------------------------------------------------------------

func TestDeadStorePositive(t *testing.T) {
	rep := runOn(t, `
	  (define (f) int64
	    (let ((mutable x 1))
	      (set! x 2)
	      (set! x 3)
	      x))`)
	if !hasCode(rep, analysis.CodeDeadStore) {
		t.Fatalf("dead store not reported: %v", codesOf(rep))
	}
}

func TestDeadStoreNegativeReadLater(t *testing.T) {
	rep := runOn(t, `
	  (define (f) int64
	    (let ((mutable x 1))
	      (set! x 2)
	      (println x)
	      x))`)
	if hasCode(rep, analysis.CodeDeadStore) {
		t.Fatalf("live store flagged: %v", rep.Findings)
	}
}

func TestDeadStoreNegativeLambdaCapture(t *testing.T) {
	// A closure can observe any later value of x: stores are never dead.
	rep := runOn(t, `
	  (define (f) int64
	    (let ((mutable x 1))
	      (let ((get (lambda () x)))
	        (set! x 2)
	        (get))))`)
	if hasCode(rep, analysis.CodeDeadStore) {
		t.Fatalf("captured store flagged: %v", rep.Findings)
	}
}

func TestUnusedBindingPositive(t *testing.T) {
	rep := runOn(t, `
	  (define (f) int64
	    (let ((unused 41) (kept 1))
	      kept))`)
	if !hasCode(rep, analysis.CodeUnusedBinding) {
		t.Fatalf("unused binding not reported: %v", codesOf(rep))
	}
}

func TestUnusedBindingNegative(t *testing.T) {
	rep := runOn(t, `
	  (define (f) int64
	    (let ((a 1) (b 2))
	      (+ a b)))`)
	if hasCode(rep, analysis.CodeUnusedBinding) {
		t.Fatalf("used bindings flagged: %v", rep.Findings)
	}
}

func TestUnusedBindingUnderscoreExempt(t *testing.T) {
	rep := runOn(t, `
	  (define (f) int64
	    (let ((_ignored 41))
	      7))`)
	if hasCode(rep, analysis.CodeUnusedBinding) {
		t.Fatalf("underscore binding flagged: %v", rep.Findings)
	}
}

func TestWriteOnlyBindingPositive(t *testing.T) {
	rep := runOn(t, `
	  (define (f) int64
	    (let ((mutable x 0))
	      (set! x 9)
	      7))`)
	found := false
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeUnusedBinding && strings.Contains(f.Message, "never read") {
			found = true
		}
	}
	if !found {
		t.Fatalf("write-only binding not reported: %v", rep.Findings)
	}
}

// ---------------------------------------------------------------------------
// ffi
// ---------------------------------------------------------------------------

func TestFFINonScalarExternalPositive(t *testing.T) {
	rep := runOn(t, `
	  (external blob_sum (-> ((vector int64)) int64) "blob_sum")
	  (define (main) int64 7)`)
	if !hasCode(rep, analysis.CodeFFIType) {
		t.Fatalf("non-scalar external not reported: %v", codesOf(rep))
	}
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeFFIType && f.Severity != source.Error {
			t.Errorf("FFI001 severity = %v, want error", f.Severity)
		}
	}
}

func TestFFIScalarExternalNegative(t *testing.T) {
	rep := runOn(t, `
	  (external c_abs (-> (int64) int64) "abs")
	  (define (main) int64 (c_abs -7))`)
	if hasCode(rep, analysis.CodeFFIType) {
		t.Fatalf("scalar external flagged: %v", rep.Findings)
	}
}

func TestFFIAtomicPositive(t *testing.T) {
	rep := runOn(t, `
	  (external c_abs (-> (int64) int64) "abs")
	  (define (main) int64
	    (atomic (c_abs -7)))`)
	if !hasCode(rep, analysis.CodeFFIAtomic) {
		t.Fatalf("external under atomic not reported: %v", codesOf(rep))
	}
}

func TestFFIAtomicInterprocedural(t *testing.T) {
	rep := runOn(t, `
	  (external c_abs (-> (int64) int64) "abs")
	  (define (helper (x int64)) int64 (c_abs x))
	  (define (main) int64
	    (atomic (helper -7)))`)
	if !hasCode(rep, analysis.CodeFFIAtomic) {
		t.Fatalf("interprocedural atomic call missed: %v", codesOf(rep))
	}
}

func TestFFIAtomicNegative(t *testing.T) {
	rep := runOn(t, `
	  (external c_abs (-> (int64) int64) "abs")
	  (define (main) int64
	    (c_abs -7))`)
	if hasCode(rep, analysis.CodeFFIAtomic) {
		t.Fatalf("plain external call flagged: %v", rep.Findings)
	}
}

func TestFFIRegionPositive(t *testing.T) {
	rep := runOn(t, `
	  (defstruct msg (v int64))
	  (external c_keep (-> (msg) int64) "keep")
	  (define (f) int64
	    (with-region r
	      (let ((m (alloc-in r (make msg :v 1))))
	        (c_keep m))))`)
	if !hasCode(rep, analysis.CodeFFIRegion) {
		t.Fatalf("unpinned region value not reported: %v", codesOf(rep))
	}
}

func TestFFIRegionNegative(t *testing.T) {
	// A scalar derived from region data is fine to pass.
	rep := runOn(t, `
	  (defstruct msg (v int64))
	  (external c_abs (-> (int64) int64) "abs")
	  (define (f) int64
	    (with-region r
	      (let ((m (alloc-in r (make msg :v 1))))
	        (c_abs (field m v)))))`)
	if hasCode(rep, analysis.CodeFFIRegion) {
		t.Fatalf("scalar pass flagged: %v", rep.Findings)
	}
}
