package analysis_test

import (
	"testing"

	"bitc/internal/analysis"
	"bitc/internal/ast"
	"bitc/internal/bench"
	"bitc/internal/factstore"
	"bitc/internal/parser"
	"bitc/internal/source"
	"bitc/internal/types"
)

// proofsOn parses, checks, and runs the bounds prover over src.
func proofsOn(t *testing.T, src string) *analysis.BoundsProofSet {
	t.Helper()
	prog, info := checkSrc(t, src)
	return analysis.BoundsProofs(prog, info)
}

func checkSrc(t *testing.T, src string) (*ast.Program, *types.Info) {
	t.Helper()
	prog, diags := parser.Parse("t.bitc", src)
	if diags.HasErrors() {
		t.Fatalf("parse: %v", diags)
	}
	info, cdiags := types.Check(prog)
	if cdiags.HasErrors() {
		t.Fatalf("check: %v", cdiags)
	}
	return prog, info
}

func TestBoundsConstantOOB(t *testing.T) {
	rep := runOn(t, `
	  (define (main) int64
	    (let ((v (make-vector 5 0)))
	      (vector-ref v 9)))`)
	if !hasCode(rep, analysis.CodeBoundOOB) {
		t.Fatalf("constant out-of-range access not reported: %v", codesOf(rep))
	}
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeBoundOOB && f.Severity != source.Error {
			t.Errorf("BOUND001 severity = %v, want error", f.Severity)
		}
	}
}

func TestBoundsNegativeIndexOOB(t *testing.T) {
	rep := runOn(t, `
	  (define (main) int64
	    (let ((v (make-vector 5 0)))
	      (vector-ref v (- 0 3))))`)
	if !hasCode(rep, analysis.CodeBoundOOB) {
		t.Fatalf("negative index not reported: %v", codesOf(rep))
	}
}

func TestBoundsBranchRefinedOOB(t *testing.T) {
	// The else branch of (< i 10) knows i >= 10 >= the length.
	rep := runOn(t, `
	  (define (get (i int64)) int64
	    (let ((v (make-vector 10 0)))
	      (if (< i 10)
	          0
	          (vector-ref v i))))`)
	if !hasCode(rep, analysis.CodeBoundOOB) {
		t.Fatalf("branch-refined OOB not reported: %v", codesOf(rep))
	}
}

func TestBoundsSymbolicOOB(t *testing.T) {
	// The index equals the symbolic length: v[n] with len(v) == n.
	rep := runOn(t, `
	  (define (get (n int64)) int64
	    (let ((v (make-vector n 0)))
	      (vector-ref v n)))`)
	if !hasCode(rep, analysis.CodeBoundOOB) {
		t.Fatalf("symbolic v[n] with len n not reported: %v", codesOf(rep))
	}
}

func TestBoundsProvenSitesReportNothing(t *testing.T) {
	rep := runOpts(t, `
	  (define (sum (n int64)) int64
	    (let ((v (make-vector n 0)))
	      (dotimes (i n) (vector-set! v i i))
	      (let ((mutable acc 0))
	        (dotimes (i n) (set! acc (+ acc (vector-ref v i))))
	        acc)))`, analysis.Options{Strict: true})
	if hasCode(rep, analysis.CodeBoundOOB) || hasCode(rep, analysis.CodeBoundMaybe) {
		t.Fatalf("proven loop accesses still reported: %v", codesOf(rep))
	}
}

func TestBoundsUnprovenOnlyUnderStrict(t *testing.T) {
	src := `
	  (define (get (n int64) (i int64)) int64
	    (let ((v (make-vector n 0)))
	      (vector-ref v i)))`
	if rep := runOn(t, src); hasCode(rep, analysis.CodeBoundMaybe) {
		t.Fatalf("BOUND002 leaked into a non-strict report: %v", codesOf(rep))
	}
	rep := runOpts(t, src, analysis.Options{Strict: true})
	if !hasCode(rep, analysis.CodeBoundMaybe) {
		t.Fatalf("BOUND002 missing under -strict: %v", codesOf(rep))
	}
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeBoundMaybe && f.Severity != source.Note {
			t.Errorf("BOUND002 severity = %v, want note", f.Severity)
		}
	}
}

func TestBoundsWhileInduction(t *testing.T) {
	// A hand-rolled counter loop: (set! i (+ i 1)) under (< i n) must keep
	// the relational bound i <= n-1 and discharge both accesses.
	ps := proofsOn(t, `
	  (define (fill (n int64)) int64
	    (let ((v (make-vector n 0)))
	      (let ((mutable i 0))
	        (while (< i n)
	          (vector-set! v i (vector-ref v i))
	          (set! i (+ i 1))))
	      0))`)
	if ps.Sites != 2 || ps.Proved != 2 {
		t.Fatalf("while-loop induction: proved %d/%d sites, want 2/2", ps.Proved, ps.Sites)
	}
}

func TestBoundsDownCountNarrowing(t *testing.T) {
	// A descending counter widens its lower bound away at the loop head; the
	// narrowing phase must recover i >= 0 from the guard for the access.
	ps := proofsOn(t, `
	  (define (drain (n int64)) int64
	    (let ((v (make-vector n 0)))
	      (let ((mutable i (- n 1)) (mutable acc 0))
	        (while (>= i 0)
	          (set! acc (+ acc (vector-ref v i)))
	          (set! i (- i 1)))
	        acc)))`)
	if ps.Sites != 1 || ps.Proved != 1 {
		t.Fatalf("down-count loop: proved %d/%d sites, want 1/1", ps.Proved, ps.Sites)
	}
}

func TestBoundsVectorLiteralLength(t *testing.T) {
	ps := proofsOn(t, `
	  (define (main) int64
	    (let ((v (vector 1 2 3)))
	      (vector-ref v 2)))`)
	if ps.Sites != 1 || ps.Proved != 1 {
		t.Fatalf("vector literal: proved %d/%d sites, want 1/1", ps.Proved, ps.Sites)
	}
}

func TestBoundsUnknownVectorUnproven(t *testing.T) {
	// A parameter vector has no visible allocation site: nothing provable,
	// nothing flagged as an error.
	ps := proofsOn(t, `
	  (define (get (v (vector int64))) int64
	    (vector-ref v 0))
	  (define (main) int64
	    (get (make-vector 4 7)))`)
	if ps.Proved != 0 {
		t.Fatalf("parameter vector access must stay unproven, proved %d/%d", ps.Proved, ps.Sites)
	}
}

// TestBoundsE1Discharge is the ISSUE acceptance gate: the prover must
// discharge at least 60% of the static vector-access sites across the E1
// benchmark kernels.
func TestBoundsE1Discharge(t *testing.T) {
	total, proved := 0, 0
	for _, name := range bench.KernelNames() {
		src, ok := bench.KernelSource(name)
		if !ok {
			t.Fatalf("kernel %s has no source", name)
		}
		ps := proofsOn(t, src)
		t.Logf("%s: proved %d/%d vector-access sites", name, ps.Proved, ps.Sites)
		total += ps.Sites
		proved += ps.Proved
	}
	if total == 0 {
		t.Fatal("no vector-access sites found in E1 kernels")
	}
	if proved*100 < total*60 {
		t.Fatalf("prover discharged %d/%d E1 sites (%d%%), acceptance floor is 60%%",
			proved, total, proved*100/total)
	}
}

// TestBoundsProofsWarmIdentity checks the cached proof path returns the
// same proof set as the cold path, and that a warm re-run recomputes
// nothing (all per-function probes hit).
func TestBoundsProofsWarmIdentity(t *testing.T) {
	src, _ := bench.KernelSource("insertion-sort")
	prog, info := checkSrc(t, src)
	cold := analysis.BoundsProofs(prog, info)

	store := factstore.New()
	first := analysis.BoundsProofsWithStore(prog, info, store)
	warm := analysis.BoundsProofsWithStore(prog, info, store)

	for _, ps := range []*analysis.BoundsProofSet{first, warm} {
		if ps.Sites != cold.Sites || ps.Proved != cold.Proved {
			t.Fatalf("stored run disagrees with cold run: %d/%d vs %d/%d",
				ps.Proved, ps.Sites, cold.Proved, cold.Sites)
		}
		if len(ps.Elidable()) != len(cold.Elidable()) {
			t.Fatalf("elidable set size drifted: %d vs %d", len(ps.Elidable()), len(cold.Elidable()))
		}
		for pos := range cold.Elidable() {
			if !ps.Elidable()[pos] {
				t.Fatalf("position %d missing from stored proof set", pos)
			}
		}
	}
}

// TestBoundsSuppression: the standard directives mute bounds findings.
func TestBoundsSuppression(t *testing.T) {
	rep := runOn(t, `
	  (define (main) int64
	    (let ((v (make-vector 5 0)))
	      (suppress "BITC-BOUND001" (vector-ref v 9))))`)
	if hasCode(rep, analysis.CodeBoundOOB) {
		t.Fatalf("suppressed BOUND001 still reported: %v", codesOf(rep))
	}
	found := false
	for _, f := range rep.Suppressed {
		if f.Code == analysis.CodeBoundOOB {
			found = true
		}
	}
	if !found {
		t.Fatal("suppressed finding not recorded in Suppressed")
	}
}

// ---------------------------------------------------------------------------
// BITC-PROV001: capability narrowing at the FFI boundary
// ---------------------------------------------------------------------------

func TestFFIProvNarrowingCast(t *testing.T) {
	rep := runOn(t, `
	  (external put8 (-> (uint8) int64) "put8")
	  (define (emit8 (x int64)) int64
	    (put8 (cast uint8 x)))`)
	if !hasCode(rep, analysis.CodeFFIProv) {
		t.Fatalf("unguarded narrowing cast at FFI boundary not reported: %v", codesOf(rep))
	}
}

func TestFFIProvGuardedCastClean(t *testing.T) {
	// Branch refinement proves the value fits the declared window.
	rep := runOn(t, `
	  (external put8 (-> (uint8) int64) "put8")
	  (define (emit8 (x int64)) int64
	    (if (and (>= x 0) (< x 256))
	        (put8 (cast uint8 x))
	        0))`)
	if hasCode(rep, analysis.CodeFFIProv) {
		t.Fatalf("guarded in-window cast reported: %v", codesOf(rep))
	}
}

func TestFFIProvLiteralClean(t *testing.T) {
	rep := runOn(t, `
	  (external put8 (-> (uint8) int64) "put8")
	  (define (emit8c) int64
	    (put8 (cast uint8 42)))`)
	if hasCode(rep, analysis.CodeFFIProv) {
		t.Fatalf("constant in-window cast reported: %v", codesOf(rep))
	}
}
