package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"bitc/internal/source"
)

// Render writes the human-readable report: one line per finding in
// file:line:col form with the lint code, plus indented related locations
// and a trailing summary line.
func (r *Report) Render(w io.Writer) {
	for _, f := range r.Findings {
		fmt.Fprintf(w, "%s: %s[%s]: %s\n", describe(r.File, f.Span), f.Severity, f.Code, f.Message)
		for _, rel := range f.Related {
			fmt.Fprintf(w, "    %s: note: %s\n", describe(r.File, rel.Span), rel.Message)
		}
	}
	fmt.Fprintf(w, "%d findings (%d errors, %d warnings, %d notes) from %s\n",
		len(r.Findings),
		r.CountBySeverity(source.Error),
		r.CountBySeverity(source.Warning),
		r.CountBySeverity(source.Note),
		strings.Join(r.Analyzers, ","))
}

func describe(f *source.File, s source.Span) string {
	if f == nil || !s.IsValid() {
		return "<unknown>"
	}
	return f.Describe(s.Start)
}

// jsonFinding is the machine-readable shape of one finding. Field names are
// part of the CI contract; do not rename casually.
type jsonFinding struct {
	Code     string        `json:"code"`
	Severity string        `json:"severity"`
	Analyzer string        `json:"analyzer"`
	File     string        `json:"file"`
	Line     int           `json:"line"`
	Col      int           `json:"col"`
	EndLine  int           `json:"endLine"`
	EndCol   int           `json:"endCol"`
	Message  string        `json:"message"`
	Related  []jsonRelated `json:"related,omitempty"`
}

type jsonRelated struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

type jsonReport struct {
	File      string        `json:"file"`
	Analyzers []string      `json:"analyzers"`
	Findings  []jsonFinding `json:"findings"`
	Errors    int           `json:"errors"`
	Warnings  int           `json:"warnings"`
	Notes     int           `json:"notes"`
}

// WriteJSON emits the report as one indented JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	name := ""
	if r.File != nil {
		name = r.File.Name
	}
	out := jsonReport{
		File:      name,
		Analyzers: r.Analyzers,
		Findings:  []jsonFinding{}, // render [] rather than null for empty
		Errors:    r.CountBySeverity(source.Error),
		Warnings:  r.CountBySeverity(source.Warning),
		Notes:     r.CountBySeverity(source.Note),
	}
	for _, f := range r.Findings {
		jf := jsonFinding{
			Code:     f.Code,
			Severity: f.Severity.String(),
			Analyzer: f.Analyzer,
			File:     name,
			Message:  f.Message,
		}
		if r.File != nil && f.Span.IsValid() {
			jf.Line, jf.Col = r.File.Position(f.Span.Start)
			jf.EndLine, jf.EndCol = r.File.Position(f.Span.End)
		}
		for _, rel := range f.Related {
			jr := jsonRelated{File: name, Message: rel.Message}
			if r.File != nil && rel.Span.IsValid() {
				jr.Line, jr.Col = r.File.Position(rel.Span.Start)
			}
			jf.Related = append(jf.Related, jr)
		}
		out.Findings = append(out.Findings, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
