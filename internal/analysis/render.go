package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"bitc/internal/source"
)

// Render writes the human-readable report: one line per finding in
// file:line:col form with the lint code, plus indented related locations
// and a trailing summary line.
func (r *Report) Render(w io.Writer) {
	for _, f := range r.Findings {
		fmt.Fprintf(w, "%s: %s[%s]: %s\n", describe(r.File, f.Span), f.Severity, f.Code, f.Message)
		for _, rel := range f.Related {
			fmt.Fprintf(w, "    %s: note: %s\n", describeRelated(r.File, rel), rel.Message)
		}
	}
	if r.Strict {
		for _, f := range r.Suppressed {
			fmt.Fprintf(w, "%s: suppressed[%s]: %s\n", describe(r.File, f.Span), f.Code, f.Message)
		}
	}
	fmt.Fprintf(w, "%d findings (%d errors, %d warnings, %d notes) from %s\n",
		len(r.Findings),
		r.CountBySeverity(source.Error),
		r.CountBySeverity(source.Warning),
		r.CountBySeverity(source.Note),
		strings.Join(r.Analyzers, ","))
	if len(r.Suppressed) > 0 {
		fmt.Fprintf(w, "%d findings suppressed by directives\n", len(r.Suppressed))
	}
}

func describe(f *source.File, s source.Span) string {
	if f == nil || !s.IsValid() {
		return "<unknown>"
	}
	return f.Describe(s.Start)
}

// describeRelated renders a related location. When the related span lives in
// a different file than the report, the primary file cannot resolve its
// line/col, so the location is rendered as file:@byte-offset — the file name
// is never dropped.
func describeRelated(f *source.File, rel Related) string {
	if rel.File != "" && (f == nil || rel.File != f.Name) {
		if rel.Span.IsValid() {
			return fmt.Sprintf("%s:@%d", rel.File, rel.Span.Start)
		}
		return rel.File
	}
	return describe(f, rel.Span)
}

// jsonFinding is the machine-readable shape of one finding. Field names are
// part of the CI contract; do not rename casually.
type jsonFinding struct {
	Code     string        `json:"code"`
	Severity string        `json:"severity"`
	Analyzer string        `json:"analyzer"`
	File     string        `json:"file"`
	Line     int           `json:"line"`
	Col      int           `json:"col"`
	EndLine  int           `json:"endLine"`
	EndCol   int           `json:"endCol"`
	Message  string        `json:"message"`
	Related  []jsonRelated `json:"related,omitempty"`
}

type jsonRelated struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

type jsonReport struct {
	File      string        `json:"file"`
	Analyzers []string      `json:"analyzers"`
	Findings  []jsonFinding `json:"findings"`
	Errors    int           `json:"errors"`
	Warnings  int           `json:"warnings"`
	Notes     int           `json:"notes"`
	// Suppressed counts directive-muted findings; the findings themselves
	// are listed only under -strict.
	Suppressed         int           `json:"suppressed"`
	SuppressedFindings []jsonFinding `json:"suppressedFindings,omitempty"`
}

// WriteJSON emits the report as one indented JSON document.
func (r *Report) WriteJSON(w io.Writer) error {
	name := ""
	if r.File != nil {
		name = r.File.Name
	}
	out := jsonReport{
		File:       name,
		Analyzers:  r.Analyzers,
		Findings:   []jsonFinding{}, // render [] rather than null for empty
		Errors:     r.CountBySeverity(source.Error),
		Warnings:   r.CountBySeverity(source.Warning),
		Notes:      r.CountBySeverity(source.Note),
		Suppressed: len(r.Suppressed),
	}
	for _, f := range r.Findings {
		out.Findings = append(out.Findings, r.jsonFinding(f, name))
	}
	if r.Strict {
		for _, f := range r.Suppressed {
			out.SuppressedFindings = append(out.SuppressedFindings, r.jsonFinding(f, name))
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func (r *Report) jsonFinding(f Finding, name string) jsonFinding {
	jf := jsonFinding{
		Code:     f.Code,
		Severity: f.Severity.String(),
		Analyzer: f.Analyzer,
		File:     name,
		Message:  f.Message,
	}
	if r.File != nil && f.Span.IsValid() {
		jf.Line, jf.Col = r.File.Position(f.Span.Start)
		jf.EndLine, jf.EndCol = r.File.Position(f.Span.End)
	}
	for _, rel := range f.Related {
		// A related span in another file keeps that file's name; its
		// line/col cannot be resolved against this report's file and stay 0.
		jr := jsonRelated{File: name, Message: rel.Message}
		if rel.File != "" && rel.File != name {
			jr.File = rel.File
		} else if r.File != nil && rel.Span.IsValid() {
			jr.Line, jr.Col = r.File.Position(rel.Span.Start)
		}
		jf.Related = append(jf.Related, jr)
	}
	return jf
}
