package analysis_test

import (
	"strings"
	"testing"

	"bitc/internal/analysis"
	"bitc/internal/factstore"
	"bitc/internal/source"
)

const tallyHeader = `
(defstruct stats (hits int64))
(define tally stats (make stats :hits 0))
`

// ---------------------------------------------------------------------------
// BITC-ATOM001: shared writes outside atomic regions
// ---------------------------------------------------------------------------

func TestAtomSharedBareWritePositive(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(define (good) unit
  (atomic (set-field! tally hits (+ (field tally hits) 1))))
(define (bad) unit
  (set-field! tally hits (+ (field tally hits) 1)))
(define (main) unit
  (let ((t (spawn (good)))) (bad) (join t)))`)
	found := false
	for _, f := range rep.Findings {
		if f.Code != analysis.CodeAtomShared {
			continue
		}
		found = true
		if !strings.Contains(f.Message, "tally.hits") || !strings.Contains(f.Message, "bad") {
			t.Fatalf("message does not name the location and function: %q", f.Message)
		}
		if len(f.Related) == 0 {
			t.Fatalf("finding has no related span pointing at the atomic access")
		}
	}
	if !found {
		t.Fatalf("no BITC-ATOM001 for a bare write to an atomically managed location; got %v", codesOf(rep))
	}
}

func TestAtomSharedAllAtomicNegative(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(define (good) unit
  (atomic (set-field! tally hits (+ (field tally hits) 1))))
(define (main) unit
  (let ((t (spawn (good)))) (good) (join t)))`)
	if hasCode(rep, analysis.CodeAtomShared) {
		t.Fatalf("all-atomic program flagged: %v", codesOf(rep))
	}
}

// A location nobody manages transactionally is the race checker's business,
// not this one's: without at least one atomic access there is no STM
// conflict-detection blind spot to point at.
func TestAtomSharedNoAtomicManagementNegative(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(define (bare) unit
  (set-field! tally hits (+ (field tally hits) 1)))
(define (main) unit
  (let ((t (spawn (bare)))) (bare) (join t)))`)
	if hasCode(rep, analysis.CodeAtomShared) {
		t.Fatalf("location with no atomic management flagged: %v", codesOf(rep))
	}
}

// The bare write and the atomic context both live behind calls: the summary
// instantiation must carry the atomic bit down into helpers and still see
// the helper's bare store as unprotected from the other entry path.
func TestAtomSharedInterprocedural(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(define (store (n int64)) unit
  (set-field! tally hits n))
(define (txn-store (n int64)) unit
  (atomic (store n)))
(define (main) unit
  (let ((t (spawn (txn-store 1)))) (store 2) (join t)))`)
	found := 0
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeAtomShared {
			found++
		}
	}
	if found == 0 {
		t.Fatalf("no BITC-ATOM001 through a call chain; got %v", codesOf(rep))
	}
}

// ---------------------------------------------------------------------------
// BITC-ATOM002: irreversible effects inside atomics
// ---------------------------------------------------------------------------

func TestAtomEffectExternInterprocedural(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(external ping (-> (int64) int64) "ping")
(define (notify (n int64)) unit (ping n) ())
(define (main) unit
  (atomic
    (set-field! tally hits 1)
    (notify 1)))`)
	found := false
	for _, f := range rep.Findings {
		if f.Code != analysis.CodeAtomEffect {
			continue
		}
		found = true
		if f.Severity != source.Error {
			t.Fatalf("ATOM002 severity = %v, want error", f.Severity)
		}
		if !strings.Contains(f.Message, "ping") || !strings.Contains(f.Message, "retry") {
			t.Fatalf("message does not explain the retry hazard: %q", f.Message)
		}
	}
	if !found {
		t.Fatalf("extern reached inside atomic through a helper not flagged; got %v", codesOf(rep))
	}
}

func TestAtomEffectPrintInsideAtomic(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(define (main) unit
  (atomic
    (set-field! tally hits 1)
    (println 1)))`)
	if !hasCode(rep, analysis.CodeAtomEffect) {
		t.Fatalf("observable I/O inside atomic not flagged; got %v", codesOf(rep))
	}
}

func TestAtomEffectOutsideAtomicNegative(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(external ping (-> (int64) int64) "ping")
(define (main) unit
  (atomic (set-field! tally hits 1))
  (ping 1)
  (println 1))`)
	if hasCode(rep, analysis.CodeAtomEffect) {
		t.Fatalf("effects after the transaction flagged: %v", codesOf(rep))
	}
}

// ---------------------------------------------------------------------------
// BITC-ATOM003: descending prepare order within an indexed lock family
// ---------------------------------------------------------------------------

func TestAtomPrepareDescendingPositive(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(define (move) unit
  (with-lock shard2
    (with-lock shard0
      (set-field! tally hits 1))))
(define (main) unit (move))`)
	found := false
	for _, f := range rep.Findings {
		if f.Code != analysis.CodeAtomPrepare {
			continue
		}
		found = true
		if !strings.Contains(f.Message, "shard0") || !strings.Contains(f.Message, "shard2") {
			t.Fatalf("message does not name both locks: %q", f.Message)
		}
	}
	if !found {
		t.Fatalf("descending shard acquisition not flagged; got %v", codesOf(rep))
	}
	// One descending pair, with no reverse path: the cycle-based deadlock
	// checker must stay silent here — catching this early is ATOM003's job.
	if hasCode(rep, "BITC-DLOCK001") {
		t.Fatalf("DLOCK001 fired without a cycle: %v", codesOf(rep))
	}
}

func TestAtomPrepareAscendingNegative(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(define (move) unit
  (with-lock shard0
    (with-lock shard2
      (set-field! tally hits 1))))
(define (main) unit (move))`)
	if hasCode(rep, analysis.CodeAtomPrepare) {
		t.Fatalf("ascending acquisition flagged: %v", codesOf(rep))
	}
}

// Locks from different families, or without a trailing index, carry no
// ordering convention to violate.
func TestAtomPrepareUnrelatedLocksNegative(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(define (a) unit
  (with-lock shard2 (with-lock mu0 (set-field! tally hits 1))))
(define (b) unit
  (with-lock outer (with-lock inner (set-field! tally hits 2))))
(define (main) unit (a) (b))`)
	if hasCode(rep, analysis.CodeAtomPrepare) {
		t.Fatalf("unrelated lock names flagged: %v", codesOf(rep))
	}
}

// The edge comes from a call chain: holding shard3, call a helper that
// takes shard1.
func TestAtomPrepareInterprocedural(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(define (inner) unit
  (with-lock shard1 (set-field! tally hits 1)))
(define (outer) unit
  (with-lock shard3 (inner)))
(define (main) unit (outer))`)
	if !hasCode(rep, analysis.CodeAtomPrepare) {
		t.Fatalf("descending acquisition through a call not flagged; got %v", codesOf(rep))
	}
}

// ---------------------------------------------------------------------------
// BITC-ATOM004: nested atomics and unbounded retry loops
// ---------------------------------------------------------------------------

func TestAtomNestedThroughCall(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(define (step) unit
  (atomic (set-field! tally hits (+ (field tally hits) 1))))
(define (main) unit
  (atomic (step) (step)))`)
	found := false
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeAtomNested && strings.Contains(f.Message, "nest") {
			found = true
		}
	}
	if !found {
		t.Fatalf("nested atomic through a call not flagged; got %v", codesOf(rep))
	}
}

func TestAtomRetryLoopPositive(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(define (step) unit
  (atomic (set-field! tally hits (- (field tally hits) 1))))
(define (main) unit
  (while (> (field tally hits) 0)
    (step)))`)
	found := false
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeAtomNested && strings.Contains(f.Message, "retried") {
			found = true
			if !strings.Contains(f.Message, "tally.hits") {
				t.Fatalf("retry finding does not name the shared condition: %q", f.Message)
			}
		}
	}
	if !found {
		t.Fatalf("unbounded retry loop over shared state not flagged; got %v", codesOf(rep))
	}
}

// Bounded iteration (dotimes) and loops whose condition reads only locals
// are not retry loops: the shape being flagged is "repeat until shared
// state says stop".
func TestAtomRetryNegatives(t *testing.T) {
	rep := runOn(t, tallyHeader+`
(define (step) unit
  (atomic (set-field! tally hits (+ (field tally hits) 1))))
(define (bounded (k int64)) unit
  (dotimes (i k) (step)))
(define (local-cond (k int64)) unit
  (let ((mutable n k))
    (while (> n 0)
      (step)
      (set! n (- n 1)))))
(define (main) unit (bounded 3) (local-cond 3))`)
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeAtomNested && strings.Contains(f.Message, "retried") {
			t.Fatalf("bounded/local-condition loop flagged as a retry loop: %q", f.Message)
		}
	}
}

// ---------------------------------------------------------------------------
// incremental cache transparency for the atomic fact kinds
// ---------------------------------------------------------------------------

// atomIncrSrc trips all four BITC-ATOM codes at once, so cold/warm
// equivalence exercises every cached atomic fact kind (atomic sites,
// irreversible effects, retry loops, lock edges) together with the older
// fact families.
const atomIncrSrc = `
(defstruct cell (v int64))
(define counter cell (make cell :v 0))
(external ping (-> (int64) int64) "ping")
(define (txn) unit
  (atomic (set-field! counter v (+ (field counter v) 1))))
(define (bare) unit
  (set-field! counter v 3))
(define (effectful) unit
  (atomic
    (set-field! counter v 1)
    (ping 1)
    ()))
(define (nested) unit
  (atomic (txn)))
(define (spin) unit
  (while (> (field counter v) 0) (txn)))
(define (move) unit
  (with-lock shard1 (with-lock shard0 (set-field! counter v 2))))
(define (neighbor (n int64)) int64 (+ n 1))
(define (main) unit
  (let ((t (spawn (txn))))
    (bare)
    (join t)
    (effectful)
    (nested)
    (spin)
    (move)
    (println (neighbor 1))))
`

// TestIncrementalAtomicFactsMatchCold: plain, cold-cached, warm-cached, and
// warm-after-one-edit runs of a program that fires every ATOM code must all
// render byte-identically to a fresh cold run in every output format.
func TestIncrementalAtomicFactsMatchCold(t *testing.T) {
	opts := analysis.Options{Parallelism: 1}
	prog, info := check(t, atomIncrSrc)
	plain, err := analysis.Run(prog, info, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range []string{
		analysis.CodeAtomShared, analysis.CodeAtomEffect,
		analysis.CodeAtomPrepare, analysis.CodeAtomNested,
	} {
		if !hasCode(plain, code) {
			t.Fatalf("fixture does not fire %s; the cache test is vacuous (got %v)", code, codesOf(plain))
		}
	}
	want := renderAll(t, plain)

	store := factstore.New()
	_, cold := runStore(t, atomIncrSrc, opts, store)
	if cold != want {
		t.Errorf("cold cached run differs from plain run")
	}
	_, warm := runStore(t, atomIncrSrc, opts, store)
	if warm != want {
		t.Errorf("warm cached run differs from plain run:\nplain:\n%s\nwarm:\n%s", want, warm)
	}

	edited := strings.Replace(atomIncrSrc, "(+ n 1)", "(+ n 2)", 1)
	_, warmEdit := runStore(t, edited, opts, store)
	eprog, einfo := check(t, edited)
	fresh, err := analysis.Run(eprog, einfo, opts)
	if err != nil {
		t.Fatal(err)
	}
	if wantEdit := renderAll(t, fresh); warmEdit != wantEdit {
		t.Errorf("warm one-edit run differs from fresh cold run on atomic facts:\nfresh:\n%s\nwarm:\n%s", wantEdit, warmEdit)
	}
}

// TestIncrementalAtomSuppressionSurvivesNeighborEdit: a directive-suppressed
// ATOM001 finding must stay suppressed (and keep appearing in the
// suppressed list) when an unrelated function is edited and the rerun is
// served warm from the fact store.
func TestIncrementalAtomSuppressionSurvivesNeighborEdit(t *testing.T) {
	src := `
(defstruct cell (v int64))
(define counter cell (make cell :v 0))
(define (txn) unit
  (atomic (set-field! counter v (+ (field counter v) 1))))
(define (init) unit
  (set-field! counter v 0)) ; bitc:ignore BITC-ATOM001
(define (neighbor (n int64)) int64 (+ n 1))
(define (main) unit
  (init)
  (let ((t (spawn (txn)))) (txn) (join t))
  (println (neighbor 1)))
`
	opts := analysis.Options{Parallelism: 1}
	store := factstore.New()
	rep, _ := runStore(t, src, opts, store)
	suppressed := 0
	for _, f := range rep.Suppressed {
		if f.Code == analysis.CodeAtomShared {
			suppressed++
		}
	}
	if suppressed == 0 {
		t.Fatalf("cold run did not record the suppressed ATOM001 (suppressed=%v findings=%v)",
			len(rep.Suppressed), codesOf(rep))
	}

	edited := strings.Replace(src, "(+ n 1)", "(+ n 2)", 1)
	rep2, warm := runStore(t, edited, opts, store)
	got := 0
	for _, f := range rep2.Suppressed {
		if f.Code == analysis.CodeAtomShared {
			got++
		}
	}
	if got != suppressed {
		t.Fatalf("suppressed ATOM001 count changed after neighbor edit: %d -> %d", suppressed, got)
	}
	if hasCode(rep2, analysis.CodeAtomShared) {
		t.Fatalf("suppressed ATOM001 resurfaced as an active finding: %v", codesOf(rep2))
	}

	eprog, einfo := check(t, edited)
	fresh, err := analysis.Run(eprog, einfo, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want := renderAll(t, fresh); warm != want {
		t.Errorf("warm suppression run differs from fresh cold run")
	}
}
