package analysis

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"bitc/internal/source"
)

// The atomicity analyzer is the static twin of the VM's STM runtime (see
// internal/vm/stm.go) and of the host-side two-phase commit the sharded
// service runs over it (internal/serve). It consumes only the whole-program
// aggregates the summary engine derives — SharedAccesses, AtomicEffects,
// NestedAtomics, RetryLoops, LockEdges — never a per-function summary
// directly: the incremental driver's warm path decodes only dirty summaries,
// and the aggregates are exactly the facts it folds for every run.
//
//   - BITC-ATOM001: a shared location is managed by atomic regions somewhere
//     in the program, but a write reaches it outside any atomic. The bare
//     write bumps the object version under concurrent optimistic readers —
//     a lost update the STM cannot detect on the bare side.
//   - BITC-ATOM002 (error): an irreversible effect — extern/FFI call,
//     observable I/O, channel operation, spawn — is reachable inside an
//     atomic region. Externs and I/O re-execute every time the transaction
//     retries and cannot be rolled back on abort; channel ops and spawns
//     trap outright. Verified against the VM by a forced-retry agreement
//     test (vm.ForceAtomicRetries).
//   - BITC-ATOM003: lock acquisitions within one indexed family (shard0,
//     shard7, …) violate the ascending-index discipline the 2PC coordinator
//     relies on for deadlock freedom: prepare in ascending order and two
//     coordinators can never hold-and-wait on each other.
//   - BITC-ATOM004: nested atomic entries (the inner commit is flattened —
//     an abort rolls back the whole nest) and atomics retried by an
//     unbounded loop over shared state (application-level livelock on top
//     of the STM's own retry; the coordinator's bounded backoff is the
//     pattern to copy).

// Atomicity lint codes.
const (
	CodeAtomShared  = "BITC-ATOM001"
	CodeAtomEffect  = "BITC-ATOM002"
	CodeAtomPrepare = "BITC-ATOM003"
	CodeAtomNested  = "BITC-ATOM004"
)

var atomicityAnalyzer = register(&Analyzer{
	Name: "atomicity",
	Doc:  "transaction safety: shared writes bypassing atomic regions, irreversible effects under STM retry, 2PC ascending-prepare discipline, nested-atomic and unbounded-retry hazards",
	Code: CodeAtomShared,
	Codes: []string{
		CodeAtomShared, CodeAtomEffect, CodeAtomPrepare, CodeAtomNested,
	},
	NeedsSummaries: true,
	Run:            runAtomicity,
})

func runAtomicity(p *Pass) {
	reportBareWrites(p)
	reportAtomicEffects(p)
	reportPrepareOrder(p)
	reportNestingAndRetries(p)
}

// reportBareWrites flags ATOM001: writes to an atomically-managed shared
// location whose lockset does not contain the "atomic" pseudo-lock.
func reportBareWrites(p *Pass) {
	type loc struct {
		atomicSpan source.Span // first atomic access, for the related span
		atomicFn   string
	}
	managed := map[string]*loc{}
	var keys []string
	for _, ac := range p.Summaries.SharedAccesses {
		if !hasLock(ac.Lockset, "atomic") {
			continue
		}
		key := ac.Global + "." + ac.Field
		if managed[key] == nil {
			managed[key] = &loc{atomicSpan: ac.Span, atomicFn: ac.Func}
			keys = append(keys, key)
		}
	}
	if len(managed) == 0 {
		return
	}
	sort.Strings(keys)

	// One finding per (location, bare-write site): the same span may appear
	// with several locksets through different call chains.
	reported := map[string]bool{}
	for _, key := range keys {
		m := managed[key]
		var bare []struct {
			span source.Span
			fn   string
			ls   []string
		}
		for _, ac := range p.Summaries.SharedAccesses {
			if !ac.Write || ac.Global+"."+ac.Field != key || hasLock(ac.Lockset, "atomic") {
				continue
			}
			rk := key + "|" + strconv.Itoa(int(ac.Span.Start))
			if reported[rk] {
				continue
			}
			reported[rk] = true
			bare = append(bare, struct {
				span source.Span
				fn   string
				ls   []string
			}{ac.Span, ac.Func, ac.Lockset})
		}
		sort.Slice(bare, func(i, j int) bool { return bare[i].span.Start < bare[j].span.Start })
		for _, w := range bare {
			held := "no locks"
			if len(w.ls) > 0 {
				held = "{" + strings.Join(w.ls, ",") + "}"
			}
			p.Report(Finding{
				Code:     CodeAtomShared,
				Severity: source.Warning,
				Span:     w.span,
				Message: fmt.Sprintf("shared %s written outside any atomic region in %s (holds %s): concurrent atomics on this location can lose the update",
					key, w.fn, held),
				Related: []Related{{
					Span:    m.atomicSpan,
					Message: fmt.Sprintf("%s is managed atomically here, in %s", key, m.atomicFn),
				}},
			})
		}
	}
}

// reportAtomicEffects flags ATOM002 for every irreversible effect reachable
// inside an atomic region.
func reportAtomicEffects(p *Pass) {
	for _, e := range p.Summaries.AtomicEffects {
		var msg string
		switch e.Kind {
		case "extern":
			msg = fmt.Sprintf("extern %s reachable inside an atomic region in %s: the foreign side effect re-executes on every STM retry and cannot be rolled back",
				e.Name, e.Fn)
		case "io":
			msg = fmt.Sprintf("observable I/O (%s) reachable inside an atomic region in %s: output re-executes on every STM retry and cannot be rolled back",
				e.Name, e.Fn)
		case "spawn":
			msg = fmt.Sprintf("spawn reachable inside an atomic region in %s: thread creation cannot be rolled back (the VM traps here)", e.Fn)
		default: // send, recv, join
			msg = fmt.Sprintf("channel/thread operation %s reachable inside an atomic region in %s: it cannot be rolled back (the VM traps here)",
				e.Name, e.Fn)
		}
		p.Reportf(CodeAtomEffect, source.Error, e.Span, "%s", msg)
	}
}

// reportPrepareOrder flags ATOM003: within one indexed lock family, an
// acquisition edge from a higher index to a lower one breaks the ascending
// discipline. Unlike BITC-DLOCK001 this fires on a single descending pair —
// the coordinator protocol requires the global order even before a reverse
// path exists to close a cycle.
func reportPrepareOrder(p *Pass) {
	edges := p.Summaries.LockEdges
	for _, a := range sortedEdgeKeys(edges) {
		famA, idxA, ok := lockFamily(a)
		if !ok {
			continue
		}
		outs := edges[a]
		for _, b := range sortedKeys(outs) {
			famB, idxB, ok := lockFamily(b)
			if !ok || famA != famB || idxA <= idxB {
				continue
			}
			site := outs[b]
			p.Report(Finding{
				Code:     CodeAtomPrepare,
				Severity: source.Warning,
				Span:     site.Span,
				Message: fmt.Sprintf("%s acquired while %s is held in %s: descending %s-index acquisition breaks the ascending-prepare discipline two-phase commit relies on for deadlock freedom",
					b, a, site.Fn, famA),
			})
		}
	}
}

// reportNestingAndRetries flags ATOM004 hazards.
func reportNestingAndRetries(p *Pass) {
	for _, a := range p.Summaries.NestedAtomics {
		p.Reportf(CodeAtomNested, source.Warning, a.Span,
			"atomic region in %s entered while another atomic is already open: nesting flattens into one transaction, so an inner conflict rolls back and re-runs the whole nest", a.Fn)
	}
	for _, r := range p.Summaries.RetryLoops {
		p.Reportf(CodeAtomNested, source.Warning, r.Span,
			"atomic region in %s retried by an unbounded loop over shared %s: no retry budget bounds the combined STM + application retries (add a bounded backoff like the 2PC coordinator's)", r.Fn, r.Cond)
	}
}

func hasLock(ls []string, name string) bool {
	for _, l := range ls {
		if l == name {
			return true
		}
	}
	return false
}

// lockFamily splits an indexed lock name into its family prefix and decimal
// index: "shard12" → ("shard", 12, true). Names without a trailing index
// have no family ordering and never participate in ATOM003.
func lockFamily(name string) (string, int, bool) {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == len(name) || i == 0 {
		return "", 0, false
	}
	idx, err := strconv.Atoi(name[i:])
	if err != nil {
		return "", 0, false
	}
	return name[:i], idx, true
}
