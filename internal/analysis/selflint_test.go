package analysis_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"bitc/internal/analysis"
	"bitc/internal/parser"
	"bitc/internal/source"
	"bitc/internal/types"
)

// corpusFiles returns every .bitc program in the golden corpus and the
// example directory — the self-lint surface.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	var out []string
	for _, pattern := range []string{"../core/testdata/*.bitc", "../../examples/progs/*.bitc"} {
		files, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, files...)
	}
	if len(out) == 0 {
		t.Fatal("no corpus files found")
	}
	return out
}

func analyzeFile(t *testing.T, path string, opts analysis.Options) *analysis.Report {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, diags := parser.Parse(filepath.Base(path), string(src))
	if diags.HasErrors() {
		t.Fatalf("%s: parse: %v", path, diags)
	}
	info, cdiags := types.Check(prog)
	if cdiags.HasErrors() {
		t.Fatalf("%s: check: %v", path, cdiags)
	}
	rep, err := analysis.Run(prog, info, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSelfLintCorpusClean runs the full analyzer suite over every shipped
// program: none may produce an error-severity finding, and the warnings that
// do appear must stay stable (the corpus is the regression surface).
func TestSelfLintCorpusClean(t *testing.T) {
	for _, path := range corpusFiles(t) {
		rep := analyzeFile(t, path, analysis.Options{})
		for _, f := range rep.Findings {
			if f.Severity == source.Error {
				t.Errorf("%s: error-severity finding: %s %s", path, f.Code, f.Message)
			}
		}
	}
}

// TestSelfLintDeterminism is the acceptance check that the parallel driver
// produces byte-identical output to the sequential one on the golden corpus.
func TestSelfLintDeterminism(t *testing.T) {
	for _, path := range corpusFiles(t) {
		var seq bytes.Buffer
		analyzeFile(t, path, analysis.Options{Parallelism: 1}).Render(&seq)
		for i := 0; i < 5; i++ {
			var par bytes.Buffer
			analyzeFile(t, path, analysis.Options{}).Render(&par)
			if par.String() != seq.String() {
				t.Fatalf("%s: parallel output differs:\n--- seq\n%s--- par\n%s", path, seq.String(), par.String())
			}
		}
	}
}
