package analysis

// The proof-set side of the bounds analyzer: BoundsProofs runs the same
// relational engine the BITC-BOUND analyzer uses, but instead of findings it
// returns the set of vector-access sites the prover discharged. internal/vm
// consumes this set in its pre-decode pass to select bounds-check-free
// handlers for proven OpVecRef/OpVecSet sites — the ISSUE's payoff: the
// static prover pays for itself at dispatch time.
//
// Sites are keyed by the access expression's source position as stamped into
// ir.Instr.Pos by the compiler (span start + 1 so that zero means "no
// position"), which is stable across compilation because both sides read the
// same resolved AST.

import (
	"bitc/internal/ast"
	"bitc/internal/cfg"
	"bitc/internal/factstore"
	"bitc/internal/pointsto"
	"bitc/internal/types"
)

// BoundsProofSet is the result of a bounds-prover run over a whole program.
type BoundsProofSet struct {
	// Sites counts the static vector-ref/vector-set! sites examined.
	Sites int
	// Proved counts the sites discharged as always in range.
	Proved int

	elidable map[int]bool
}

// Elidable returns the set of proven access sites keyed by compiler position
// stamp (source span start + 1, matching ir.Instr.Pos). The returned map is
// shared; callers must not mutate it.
func (ps *BoundsProofSet) Elidable() map[int]bool { return ps.elidable }

// BoundsProofs runs the bounds prover over every function and returns the
// proof set. It is independent of the finding drivers so the VM path can ask
// for proofs without assembling a report.
func BoundsProofs(prog *ast.Program, info *types.Info) *BoundsProofSet {
	return BoundsProofsWithStore(prog, info, nil)
}

// cachedProofs is one function's proof sites with relative spans, rebased on
// every hit like all cached facts.
type cachedProofs struct {
	Sites []cachedProofSite
}

type cachedProofSite struct {
	Span   factstore.RelSpan
	Proved bool
}

// BoundsProofsWithStore is BoundsProofs backed by the incremental fact
// store: per-function proof sites are cached under the function's content
// key, its free-name environment signature, and its points-to flow
// component key — exactly the inputs the engine's verdicts depend on — so a
// warm call recomputes nothing and returns an identical proof set.
func BoundsProofsWithStore(prog *ast.Program, info *types.Info, store *factstore.Store) *BoundsProofSet {
	var funcs []*ast.DefineFunc
	for _, d := range prog.Defs {
		if fn, ok := d.(*ast.DefineFunc); ok {
			funcs = append(funcs, fn)
		}
	}
	ps := &BoundsProofSet{elidable: map[int]bool{}}

	record := func(ix *factstore.Index, cp *cachedProofs) {
		for _, s := range cp.Sites {
			ps.Sites++
			if s.Proved {
				ps.Proved++
				sp := ix.Abs(s.Span)
				ps.elidable[int(sp.Start)+1] = true
			}
		}
	}
	prove := func(fn *ast.DefineFunc, ix *factstore.Index,
		cfgs map[*ast.DefineFunc]*cfg.Graph, pts *pointsto.Result) *cachedProofs {
		eng := newBoundsEngine(info, cfgs[fn], pts, fn.Name)
		cp := &cachedProofs{}
		for _, s := range eng.analyze() {
			cp.Sites = append(cp.Sites, cachedProofSite{
				Span: ix.Rel(s.span), Proved: s.verdict == siteProved,
			})
		}
		return cp
	}

	if store == nil {
		ix := factstore.NewIndex(prog)
		cfgs := make(map[*ast.DefineFunc]*cfg.Graph, len(funcs))
		for _, fn := range funcs {
			cfgs[fn] = cfg.Build(fn)
		}
		pts := pointsto.Analyze(prog, info, cfgs)
		for _, fn := range funcs {
			record(ix, prove(fn, ix, cfgs, pts))
		}
		return ps
	}

	store.BeginRun()
	k := buildKeys(prog, info, store, funcs, true)
	key := make([]string, len(funcs))
	proofs := make([]*cachedProofs, len(funcs))
	anyMiss := false
	for fi := range funcs {
		key[fi] = "bp\x00" + k.funcKey[fi] + k.envSig[fi] + k.compKey[k.fnComp[fi]]
		if v, ok := store.Get(key[fi]); ok {
			proofs[fi] = v.(*cachedProofs)
		} else {
			anyMiss = true
		}
	}
	// Any miss rebuilds the full substrate: proofs are consumed at program
	// load (one shot), so the warm all-hit path is the one worth optimising.
	if anyMiss {
		cfgs := make(map[*ast.DefineFunc]*cfg.Graph, len(funcs))
		for _, fn := range funcs {
			cfgs[fn] = cfg.Build(fn)
		}
		pts := pointsto.Analyze(prog, info, cfgs)
		for fi, fn := range funcs {
			if proofs[fi] == nil {
				proofs[fi] = prove(fn, k.ix, cfgs, pts)
				store.Put(key[fi], proofs[fi])
			}
		}
	}
	for fi := range funcs {
		record(k.ix, proofs[fi])
	}
	return ps
}
