package analysis_test

import (
	"testing"

	"bitc/internal/analysis"
	"bitc/internal/corpus"
	"bitc/internal/factstore"
)

func TestCorpusColdWarmSmoke(t *testing.T) {
	src := corpus.Text(500, 25)
	opts := analysis.Options{}
	prog, info := check(t, src)
	plain, err := analysis.Run(prog, info, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, plain)
	store := factstore.New()
	_, cold := runStore(t, src, opts, store)
	if cold != want {
		t.Error("cold differs")
	}
	edited := corpus.EditOne(src, 137)
	_, warm := runStore(t, edited, opts, store)
	eprog, einfo := check(t, edited)
	fresh, err := analysis.Run(eprog, einfo, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm != renderAll(t, fresh) {
		t.Error("warm after corpus edit differs from fresh cold")
	}
	st := store.Stats()
	t.Logf("stats: %+v", st)
}
