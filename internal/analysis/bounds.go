package analysis

// The bounds analyzer is the static twin of the VM's vector bounds check
// (`vector index %d out of range 0..%d`, internal/vm/exec.go). It runs a
// relational interval analysis over the function's CFG — the same
// internal/dataflow/interval domain the truncate checker uses, extended
// with symbolic difference bounds (`i <= n+k`, `i >= n+k`) — and resolves
// every `vector-ref`/`vector-set!` site against the length of the vector
// it accesses, recovered from `make-vector`/`vector` allocation sites
// through the points-to object graph.
//
// Three mechanisms make loops provable:
//
//   - branch refinement: `(< i n)` on the true edge records both the
//     numeric clamp and the symbolic fact i <= n-1;
//   - loop-induction recognition: `(set! i (+ i 1))` shifts i's numeric
//     range and its symbolic offsets instead of discarding them, and the
//     solver's widening/narrowing hooks (dataflow.Widener) converge the
//     growing counter without losing the loop exit bound;
//   - symbolic lengths: `(make-vector n 0)` records len(v) = n against the
//     allocation's points-to object, so `i <= n-1` discharges `v[i]`
//     without knowing n.
//
// Verdicts per site: provably out of range (BITC-BOUND001, error — the
// trap always fires if the site executes), proved in range (no finding;
// the site joins the BoundsProofs set that internal/vm uses to elide its
// bounds checks), or neither (BITC-BOUND002, a note shown under -strict).

import (
	"fmt"
	"math/big"

	"bitc/internal/ast"
	"bitc/internal/cfg"
	"bitc/internal/dataflow"
	"bitc/internal/dataflow/interval"
	"bitc/internal/pointsto"
	"bitc/internal/source"
	"bitc/internal/types"
)

// Bounds lint codes.
const (
	// CodeBoundOOB flags a vector access that is provably out of range on
	// every execution reaching it.
	CodeBoundOOB = "BITC-BOUND001"
	// CodeBoundMaybe flags a vector access the prover could not discharge;
	// it is informational and rendered only under -strict.
	CodeBoundMaybe = "BITC-BOUND002"
)

var boundsAnalyzer = register(&Analyzer{
	Name:          "bounds",
	Doc:           "relational vector-bounds verification: branch-refined, loop-inducted ranges against symbolic vector lengths",
	Code:          CodeBoundOOB,
	Codes:         []string{CodeBoundOOB, CodeBoundMaybe},
	PerFunction:   true,
	NeedsCFG:      true,
	NeedsPointsTo: true,
	Run:           runBounds,
})

func runBounds(p *Pass) {
	eng := newBoundsEngine(p.Info, p.CFG(nil), p.PointsTo, p.Fn.Name)
	for _, s := range eng.analyze() {
		switch s.verdict {
		case siteOOB:
			p.Reportf(CodeBoundOOB, source.Error, s.span, "%s", s.msg)
		case siteUnproven:
			p.Reportf(CodeBoundMaybe, source.Note, s.span, "%s", s.msg)
		}
	}
}

// siteVerdict classifies one static vector-access site.
type siteVerdict int

const (
	siteProved siteVerdict = iota
	siteOOB
	siteUnproven
)

// boundsSite is the engine's result for one vector-ref/vector-set! site.
type boundsSite struct {
	span    source.Span
	verdict siteVerdict
	msg     string
}

// lenFact is what the engine knows about the length of the vectors
// allocated at one site: a numeric range, and optionally an exact symbolic
// form length == sym + k for a local whose value is stable over the whole
// function activation.
type lenFact struct {
	rng *interval.I
	sym string
	k   *big.Int
}

func (lf *lenFact) String() string {
	if lf == nil {
		return "unknown"
	}
	if lf.sym != "" {
		if lf.k.Sign() == 0 {
			return lf.sym
		}
		return fmt.Sprintf("%s%+d", lf.sym, lf.k)
	}
	return lf.rng.String()
}

// bFact is the per-variable dataflow fact: a numeric interval plus
// symbolic difference bounds (var <= sym+k for each ub entry, var >= sym+k
// for each lb entry). Facts are immutable; transfer builds fresh ones.
type bFact struct {
	rng    *interval.I
	ub, lb map[string]*big.Int
}

func (f *bFact) clone() *bFact {
	out := &bFact{rng: f.rng}
	if len(f.ub) > 0 {
		out.ub = make(map[string]*big.Int, len(f.ub))
		for k, v := range f.ub {
			out.ub[k] = v
		}
	}
	if len(f.lb) > 0 {
		out.lb = make(map[string]*big.Int, len(f.lb))
		for k, v := range f.lb {
			out.lb[k] = v
		}
	}
	return out
}

// shift translates the fact by a constant: numeric range and every
// symbolic offset move together — this is what keeps `(set! i (+ i 1))`
// style induction updates relational instead of destructive.
func (f *bFact) shift(k *big.Int) *bFact {
	out := &bFact{rng: interval.Shift(f.rng, k)}
	if len(f.ub) > 0 {
		out.ub = make(map[string]*big.Int, len(f.ub))
		for s, v := range f.ub {
			out.ub[s] = new(big.Int).Add(v, k)
		}
	}
	if len(f.lb) > 0 {
		out.lb = make(map[string]*big.Int, len(f.lb))
		for s, v := range f.lb {
			out.lb[s] = new(big.Int).Add(v, k)
		}
	}
	return out
}

func eqSymBounds(a, b map[string]*big.Int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av.Cmp(bv) != 0 {
			return false
		}
	}
	return true
}

// boundsEnv is the dataflow fact: known facts for locals, plus a
// reachability flag distinguishing bottom from "reachable, nothing known".
type boundsEnv struct {
	reached bool
	vars    map[string]*bFact
}

func (e boundsEnv) clone() boundsEnv {
	out := boundsEnv{reached: e.reached, vars: make(map[string]*bFact, len(e.vars))}
	for k, v := range e.vars {
		out.vars[k] = v
	}
	return out
}

// boundsEngine is the forward relational-interval problem plus the site
// checker built on its solution. One engine analyzes one function.
type boundsEngine struct {
	info *types.Info
	g    *cfg.Graph
	pts  *pointsto.Result
	fn   string

	// volatile: locals a closure may assign — never tracked.
	volatile map[string]bool
	// assigned: locals that are the target of any set!.
	assigned map[string]bool
	// inLoop marks blocks that belong to some natural loop; a symbol
	// declared inside a loop is re-bound per iteration and cannot anchor a
	// flow-insensitive length fact.
	inLoop []bool
	// lens maps each points-to vector object to its length fact.
	lens map[*pointsto.Object]*lenFact
}

func newBoundsEngine(info *types.Info, g *cfg.Graph, pts *pointsto.Result, fn string) *boundsEngine {
	eng := &boundsEngine{
		info: info, g: g, pts: pts, fn: fn,
		volatile: map[string]bool{},
		assigned: map[string]bool{},
		inLoop:   make([]bool, len(g.Blocks)),
		lens:     map[*pointsto.Object]*lenFact{},
	}
	for _, b := range g.Blocks {
		for _, a := range b.Atoms {
			if a.Op == cfg.OpUse && a.Deferred && a.WriteRef {
				eng.volatile[a.Name] = true
			}
			if a.Op == cfg.OpDef {
				eng.assigned[a.Name] = true
			}
		}
		if b.Loop != nil {
			for _, m := range g.LoopBlocks(b) {
				eng.inLoop[m.Index] = true
			}
		}
	}
	eng.scanAllocs()
	return eng
}

// symOK reports whether name can appear as the anchor of a symbolic bound:
// its value must not change underneath the fact. Loop induction variables
// advance without a set! atom, so they are excluded too (an upper bound
// over a monotonically increasing counter would stay sound, but a lower
// bound would not; excluding them keeps the fact language uniform).
func (eng *boundsEngine) symOK(name string) bool {
	if name == "" || eng.volatile[name] || eng.assigned[name] {
		return false
	}
	if d := eng.g.Decls[name]; d != nil && d.Kind == cfg.DeclLoop {
		return false
	}
	return true
}

// scanAllocs records a length fact for every vector allocation site in the
// function. Length facts are flow-insensitive (an object's element count is
// fixed at allocation), so counts are evaluated under the empty environment:
// literals, casts, and stable symbols survive; anything else degrades to the
// count's type range. A symbolic anchor additionally requires the anchoring
// local to be declared outside any loop — a let re-bound per iteration has a
// different value for each allocated instance.
func (eng *boundsEngine) scanAllocs() {
	if eng.pts == nil {
		return // no object graph: every vector length stays unknown
	}
	for _, b := range eng.g.Blocks {
		for _, a := range b.Atoms {
			if a.Op != cfg.OpCall {
				continue
			}
			call, ok := a.Expr.(*ast.Call)
			if !ok {
				continue
			}
			var lf *lenFact
			switch a.Name {
			case "make-vector":
				if len(call.Args) != 2 {
					continue
				}
				cf := eng.evalFact(boundsEnv{reached: true}, call.Args[0])
				if cf == nil {
					continue
				}
				lf = &lenFact{rng: cf.rng}
				// An exact symbolic length needs matching upper and lower
				// offsets against the same stable, loop-free anchor.
				for s, hi := range cf.ub {
					if lo, ok := cf.lb[s]; ok && lo.Cmp(hi) == 0 && eng.stableAnchor(s) {
						lf.sym, lf.k = s, hi
						break
					}
				}
			case "vector":
				lf = &lenFact{rng: interval.Of(int64(len(call.Args)), int64(len(call.Args)))}
			default:
				continue
			}
			// A vector that exists has a non-negative length (a negative
			// make-vector count traps at the allocation, so no access ever
			// sees it).
			lf.rng = interval.Intersect(lf.rng, interval.New(big.NewInt(0), nil))
			for _, o := range eng.pts.ExprObjects(call) {
				if o.Kind == pointsto.ObjVector {
					eng.lens[o] = lf
				}
			}
		}
	}
}

// stableAnchor reports whether name may anchor a flow-insensitive length
// fact: symOK plus declared outside every loop (parameters always qualify).
func (eng *boundsEngine) stableAnchor(name string) bool {
	if !eng.symOK(name) {
		return false
	}
	d := eng.g.Decls[name]
	if d == nil {
		return false
	}
	if d.Kind == cfg.DeclParam {
		return true
	}
	for _, b := range eng.g.Blocks {
		for _, a := range b.Atoms {
			if a.Op == cfg.OpDecl && a.Name == name {
				return !eng.inLoop[b.Index]
			}
		}
	}
	return false
}

// analyze solves the dataflow problem and classifies every vector-access
// site, in deterministic block/atom order.
func (eng *boundsEngine) analyze() []boundsSite {
	res := dataflow.Solve[boundsEnv](eng.g, eng)
	var sites []boundsSite
	for _, b := range eng.g.Blocks {
		env := res.In[b.Index]
		for _, a := range b.Atoms {
			if a.Op == cfg.OpCall && (a.Name == "vector-ref" || a.Name == "vector-set!") {
				if call, ok := a.Expr.(*ast.Call); ok && len(call.Args) >= 2 {
					checkEnv := env
					if a.Deferred || !env.reached {
						// Deferred code runs at an unknown later point;
						// only constants and stable symbols survive.
						checkEnv = boundsEnv{reached: true}
					}
					sites = append(sites, eng.checkSite(checkEnv, call))
				}
			}
			env = eng.step(env, a)
		}
	}
	return sites
}

// checkSite resolves one access against the length of the vector operand.
func (eng *boundsEngine) checkSite(env boundsEnv, call *ast.Call) boundsSite {
	s := boundsSite{span: call.Span()}
	lf := eng.lenOf(call.Args[0])
	idx := eng.evalFact(env, call.Args[1])
	if idx == nil {
		idx = &bFact{rng: interval.Top()}
	}

	// Provably out of range: the index is always negative, or always at or
	// beyond every possible length.
	if idx.rng.Hi != nil && idx.rng.Hi.Sign() < 0 {
		s.verdict = siteOOB
		s.msg = fmt.Sprintf("vector index is always out of range: index range %s is entirely negative", idx.rng)
		return s
	}
	if lf != nil {
		alwaysOver := lf.rng.Hi != nil && idx.rng.Lo != nil && idx.rng.Lo.Cmp(lf.rng.Hi) >= 0
		if !alwaysOver && lf.sym != "" {
			// index >= sym + k == length on every execution.
			if lo, ok := idx.lb[lf.sym]; ok && lo.Cmp(lf.k) >= 0 {
				alwaysOver = true
			}
		}
		if alwaysOver {
			s.verdict = siteOOB
			s.msg = fmt.Sprintf("vector index is always out of range: index range %s never falls below the vector length %s", idx.rng, lf)
			return s
		}
	}

	// Proved in range: non-negative below, under the length above (either
	// numerically against the smallest possible length, or symbolically
	// against an exact length anchor).
	if idx.rng.Nonneg() && lf != nil {
		under := lf.rng.Lo != nil && idx.rng.Hi != nil && idx.rng.Hi.Cmp(lf.rng.Lo) < 0
		if !under && lf.sym != "" {
			// index <= sym + k' with k' <= k-1 means index <= length-1.
			if hi, ok := idx.ub[lf.sym]; ok && hi.Cmp(new(big.Int).Sub(lf.k, big.NewInt(1))) <= 0 {
				under = true
			}
		}
		if under {
			s.verdict = siteProved
			return s
		}
	}

	s.verdict = siteUnproven
	s.msg = fmt.Sprintf("vector index may be out of range: the prover cannot discharge index range %s against vector length %s", idx.rng, lf)
	return s
}

// lenOf resolves the vector operand to its allocation-site length fact,
// which requires the points-to set to be a single known vector object.
func (eng *boundsEngine) lenOf(e ast.Expr) *lenFact {
	if eng.pts == nil {
		return nil
	}
	var objs []*pointsto.Object
	if v, ok := e.(*ast.VarRef); ok {
		if u := eng.g.Rename[v]; u != "" {
			objs = eng.pts.VarObjects(eng.fn, u)
		} else if eng.info.Globals[v.Name] != nil {
			objs = eng.pts.GlobalObjects(v.Name)
		}
	} else {
		objs = eng.pts.ExprObjects(e)
	}
	if len(objs) != 1 {
		return nil
	}
	return eng.lens[objs[0]]
}

// ---------------------------------------------------------------------------
// Dataflow problem
// ---------------------------------------------------------------------------

// Direction is Forward: facts follow evaluation order.
func (eng *boundsEngine) Direction() dataflow.Direction { return dataflow.Forward }

// Boundary is the reachable empty environment at function entry.
func (eng *boundsEngine) Boundary() boundsEnv { return boundsEnv{reached: true} }

// Init is bottom (unreached).
func (eng *boundsEngine) Init() boundsEnv { return boundsEnv{} }

// Meet joins two paths: interval hull on numeric ranges, and the weaker of
// each common symbolic offset (max for upper bounds, min for lower); facts
// not present on both sides are dropped. Bottom is the identity.
func (eng *boundsEngine) Meet(a, b boundsEnv) boundsEnv {
	if !a.reached {
		return b
	}
	if !b.reached {
		return a
	}
	out := boundsEnv{reached: true, vars: map[string]*bFact{}}
	for k, av := range a.vars {
		bv, ok := b.vars[k]
		if !ok {
			continue
		}
		m := &bFact{rng: interval.Hull(av.rng, bv.rng)}
		for s, ak := range av.ub {
			if bk, ok := bv.ub[s]; ok {
				if bk.Cmp(ak) > 0 {
					ak = bk
				}
				if m.ub == nil {
					m.ub = map[string]*big.Int{}
				}
				m.ub[s] = ak
			}
		}
		for s, ak := range av.lb {
			if bk, ok := bv.lb[s]; ok {
				if bk.Cmp(ak) < 0 {
					ak = bk
				}
				if m.lb == nil {
					m.lb = map[string]*big.Int{}
				}
				m.lb[s] = ak
			}
		}
		out.vars[k] = m
	}
	return out
}

// Equal compares environments for the solver's fixpoint test.
func (eng *boundsEngine) Equal(a, b boundsEnv) bool {
	if a.reached != b.reached || len(a.vars) != len(b.vars) {
		return false
	}
	for k, av := range a.vars {
		bv, ok := b.vars[k]
		if !ok || !av.rng.Eq(bv.rng) || !eqSymBounds(av.ub, bv.ub) || !eqSymBounds(av.lb, bv.lb) {
			return false
		}
	}
	return true
}

// Transfer folds step over the block's atoms.
func (eng *boundsEngine) Transfer(b *cfg.Block, in boundsEnv) boundsEnv {
	if !in.reached {
		return in
	}
	out := in.clone()
	for _, a := range b.Atoms {
		out = eng.step(out, a)
	}
	return out
}

// Widen accelerates loop convergence: numeric ranges widen side-wise
// (interval.Widen), symbolic offsets survive only while stable, and facts
// absent from the previous iteration pass through (first visit).
func (eng *boundsEngine) Widen(_ *cfg.Block, prev, next boundsEnv) boundsEnv {
	if !prev.reached || !next.reached {
		return next
	}
	out := boundsEnv{reached: true, vars: map[string]*bFact{}}
	for k, nv := range next.vars {
		pv, ok := prev.vars[k]
		if !ok {
			out.vars[k] = nv
			continue
		}
		w := &bFact{rng: interval.Widen(pv.rng, nv.rng)}
		for s, nk := range nv.ub {
			if pk, ok := pv.ub[s]; ok && pk.Cmp(nk) == 0 {
				if w.ub == nil {
					w.ub = map[string]*big.Int{}
				}
				w.ub[s] = nk
			}
		}
		for s, nk := range nv.lb {
			if pk, ok := pv.lb[s]; ok && pk.Cmp(nk) == 0 {
				if w.lb == nil {
					w.lb = map[string]*big.Int{}
				}
				w.lb[s] = nk
			}
		}
		out.vars[k] = w
	}
	return out
}

// Narrow refines the widened header fact during the descending phase: each
// variable keeps its symbolic bounds and narrows its numeric range against
// the freshly recomputed meet (interval.Narrow only fills widened sides, so
// the descent is sound and bounded).
func (eng *boundsEngine) Narrow(_ *cfg.Block, prev, next boundsEnv) boundsEnv {
	if !prev.reached || !next.reached {
		return prev
	}
	out := boundsEnv{reached: true, vars: map[string]*bFact{}}
	for k, pv := range prev.vars {
		nv, ok := next.vars[k]
		if !ok {
			out.vars[k] = pv
			continue
		}
		n := pv.clone()
		n.rng = interval.Narrow(pv.rng, nv.rng)
		out.vars[k] = n
	}
	return out
}

// step applies one atom (shared by Transfer and the checker's replay).
func (eng *boundsEngine) step(env boundsEnv, a cfg.Atom) boundsEnv {
	if !env.reached {
		return env
	}
	switch a.Op {
	case cfg.OpDef:
		if a.Deferred {
			return env
		}
		if s, ok := a.Expr.(*ast.Set); ok {
			nf := eng.evalFact(env, s.Value)
			return eng.rebind(env, a.Name, nf)
		}
	case cfg.OpDecl:
		switch a.Decl.Kind {
		case cfg.DeclLet:
			return eng.rebind(env, a.Name, eng.evalFact(env, a.Decl.Binding.Init))
		case cfg.DeclLoop:
			// dotimes counts i = 0 .. count-1: the numeric upper bound comes
			// from the count's range, the symbolic ones from the count's
			// anchors shifted down by one.
			if dt, ok := a.Decl.Node.(*ast.DoTimes); ok {
				cf := eng.evalFact(env, dt.Count)
				if cf != nil {
					f := cf.shift(big.NewInt(-1))
					f.rng = interval.Intersect(f.rng, interval.New(big.NewInt(0), nil))
					f.lb = nil // i starts at 0 regardless of the count's floor
					return eng.rebind(env, a.Name, f)
				}
			}
			return eng.rebind(env, a.Name, nil)
		default:
			return eng.rebind(env, a.Name, nil)
		}
	}
	return env
}

// rebind installs a new fact for name (nil clears it) and invalidates every
// symbolic bound anchored on name — its value just changed.
func (eng *boundsEngine) rebind(env boundsEnv, name string, f *bFact) boundsEnv {
	if eng.volatile[name] {
		return env
	}
	out := env.clone()
	for k, v := range out.vars {
		if _, ok := v.ub[name]; !ok {
			if _, ok := v.lb[name]; !ok {
				continue
			}
		}
		nv := v.clone()
		delete(nv.ub, name)
		delete(nv.lb, name)
		out.vars[k] = nv
	}
	if f == nil {
		delete(out.vars, name)
		return out
	}
	// A self-referential bound (x <= x+k from evaluating the old x) is
	// meaningless after the rebind.
	if _, ok := f.ub[name]; ok {
		f = f.clone()
		delete(f.ub, name)
		delete(f.lb, name)
	} else if _, ok := f.lb[name]; ok {
		f = f.clone()
		delete(f.lb, name)
	}
	out.vars[name] = f
	return out
}

// Flow refines the fact along a branch edge: succ 0 is the true edge,
// succ 1 the false edge (dataflow.EdgeRefiner).
func (eng *boundsEngine) Flow(from *cfg.Block, succIdx int, out boundsEnv) boundsEnv {
	if !out.reached || from.Cond == nil || len(from.Succs) != 2 {
		return out
	}
	return eng.refine(out, from.Cond, succIdx == 0)
}

// refine applies a branch condition's truth to the environment.
func (eng *boundsEngine) refine(env boundsEnv, cond ast.Expr, truth bool) boundsEnv {
	call, ok := cond.(*ast.Call)
	if !ok {
		return env
	}
	fn, ok := call.Fn.(*ast.VarRef)
	if !ok {
		return env
	}
	switch fn.Name {
	case "not":
		if len(call.Args) == 1 {
			return eng.refine(env, call.Args[0], !truth)
		}
		return env
	case "and":
		if truth {
			for _, a := range call.Args {
				env = eng.refine(env, a, true)
			}
		}
		return env
	case "or":
		if !truth {
			for _, a := range call.Args {
				env = eng.refine(env, a, false)
			}
		}
		return env
	}
	if len(call.Args) != 2 {
		return env
	}
	a, b := call.Args[0], call.Args[1]
	switch fn.Name {
	case "<":
		if truth {
			return eng.constrainLess(env, a, b, true)
		}
		return eng.constrainLess(env, b, a, false) // !(a<b) == b<=a
	case "<=":
		if truth {
			return eng.constrainLess(env, a, b, false)
		}
		return eng.constrainLess(env, b, a, true) // !(a<=b) == b<a
	case ">":
		return eng.refine(env, &ast.Call{Fn: fn2("<", fn), Args: []ast.Expr{b, a}}, truth)
	case ">=":
		return eng.refine(env, &ast.Call{Fn: fn2("<=", fn), Args: []ast.Expr{b, a}}, truth)
	case "=":
		if truth {
			env = eng.constrainLess(env, a, b, false)
			return eng.constrainLess(env, b, a, false)
		}
	}
	return env
}

// constrainLess records a < b (strict) or a <= b into the environment,
// clamping both operands numerically and merging symbolic offsets from the
// opposite side. A numeric contradiction makes the edge unreachable.
func (eng *boundsEngine) constrainLess(env boundsEnv, a, b ast.Expr, strict bool) boundsEnv {
	af, bf := eng.evalFact(env, a), eng.evalFact(env, b)
	gap := big.NewInt(0)
	if strict {
		gap = big.NewInt(1)
	}
	if bf != nil {
		env = eng.applyBound(env, a, bf.shift(new(big.Int).Neg(gap)), true)
	}
	if !env.reached {
		return env
	}
	if af != nil {
		env = eng.applyBound(env, b, af.shift(gap), false)
	}
	return env
}

// applyBound clamps the local named by e with the given side of bound:
// upper=true installs e <= bound (numeric Hi plus bound's ub anchors),
// upper=false installs e >= bound (numeric Lo plus bound's lb anchors).
func (eng *boundsEngine) applyBound(env boundsEnv, e ast.Expr, bound *bFact, upper bool) boundsEnv {
	if !env.reached {
		return env
	}
	v, ok := e.(*ast.VarRef)
	if !ok {
		return env
	}
	name := eng.g.Rename[v]
	if name == "" || eng.volatile[name] {
		return env
	}
	cur := eng.evalFact(env, e)
	if cur == nil {
		return env
	}
	next := cur.clone()
	if upper {
		next.rng = interval.Intersect(next.rng, interval.New(nil, bound.rng.Hi))
		for s, k := range bound.ub {
			if s == name || !eng.symOK(s) {
				continue
			}
			if old, ok := next.ub[s]; !ok || k.Cmp(old) < 0 {
				if next.ub == nil {
					next.ub = map[string]*big.Int{}
				}
				next.ub[s] = k
			}
		}
	} else {
		next.rng = interval.Intersect(next.rng, interval.New(bound.rng.Lo, nil))
		for s, k := range bound.lb {
			if s == name || !eng.symOK(s) {
				continue
			}
			if old, ok := next.lb[s]; !ok || k.Cmp(old) > 0 {
				if next.lb == nil {
					next.lb = map[string]*big.Int{}
				}
				next.lb[s] = k
			}
		}
	}
	if next.rng.Empty() {
		return boundsEnv{} // condition can never hold: edge unreachable
	}
	out := env.clone()
	out.vars[name] = next
	return out
}

// evalFact computes a conservative fact for e under env, or nil when e is
// not integer-valued. The fallback for unknown expressions is the full
// (finite) type range with no symbolic bounds.
func (eng *boundsEngine) evalFact(env boundsEnv, e ast.Expr) *bFact {
	t := types.Prune(eng.info.TypeOf(e))
	full := typeRange(t)
	fallback := func() *bFact {
		if full == nil {
			return nil
		}
		return &bFact{rng: full}
	}
	switch e := e.(type) {
	case *ast.IntLit:
		return &bFact{rng: interval.Point(big.NewInt(e.Value))}
	case *ast.CharLit:
		return &bFact{rng: interval.Point(big.NewInt(int64(e.Value)))}
	case *ast.VarRef:
		name := eng.g.Rename[e]
		if name == "" {
			return fallback()
		}
		f := env.vars[name]
		if f == nil {
			if full == nil {
				return nil
			}
			f = &bFact{rng: full}
		}
		// A stable local is its own exact symbolic anchor: x <= x+0 and
		// x >= x+0 — the seed every relational fact grows from.
		if eng.symOK(name) {
			f = f.clone()
			if _, ok := f.ub[name]; !ok {
				if f.ub == nil {
					f.ub = map[string]*big.Int{}
				}
				f.ub[name] = big.NewInt(0)
			}
			if _, ok := f.lb[name]; !ok {
				if f.lb == nil {
					f.lb = map[string]*big.Int{}
				}
				f.lb[name] = big.NewInt(0)
			}
		}
		return f
	case *ast.Cast:
		inner := eng.evalFact(env, e.Expr)
		if inner != nil && full != nil && inner.rng.Within(full) {
			return inner // value preserved by the cast
		}
		return fallback()
	case *ast.Begin:
		if n := len(e.Body); n > 0 {
			if f := eng.evalFact(env, e.Body[n-1]); f != nil {
				return f
			}
		}
		return fallback()
	case *ast.Call:
		if f := eng.callFact(env, e); f != nil {
			return f
		}
		return fallback()
	}
	return fallback()
}

// callFact evaluates the builtins the relational domain understands:
// +/- (shifting symbolic offsets through constant offsets), vector-length
// (projecting a length fact back into the integer domain), and the
// masking/remainder builtins the truncate checker narrows.
func (eng *boundsEngine) callFact(env boundsEnv, call *ast.Call) *bFact {
	v, ok := call.Fn.(*ast.VarRef)
	if !ok {
		return nil
	}
	switch v.Name {
	case "+", "-":
		if len(call.Args) != 2 {
			return nil
		}
		af, bf := eng.evalFact(env, call.Args[0]), eng.evalFact(env, call.Args[1])
		if af == nil || bf == nil {
			return nil
		}
		if v.Name == "+" {
			if k := pointOf(bf); k != nil {
				return af.shift(k)
			}
			if k := pointOf(af); k != nil {
				return bf.shift(k)
			}
			return &bFact{rng: interval.Add(af.rng, bf.rng)}
		}
		if k := pointOf(bf); k != nil {
			return af.shift(new(big.Int).Neg(k))
		}
		return &bFact{rng: interval.Sub(af.rng, bf.rng)}
	case "vector-length":
		if len(call.Args) != 1 {
			return nil
		}
		lf := eng.lenOf(call.Args[0])
		if lf == nil {
			return nil
		}
		f := &bFact{rng: lf.rng}
		if lf.sym != "" {
			f.ub = map[string]*big.Int{lf.sym: lf.k}
			f.lb = map[string]*big.Int{lf.sym: lf.k}
		}
		return f
	case "bitand", "mod", "shr":
		if r := eng.builtinNumRange(env, v.Name, call); r != nil {
			return &bFact{rng: r}
		}
	}
	return nil
}

// pointOf returns the constant value of a singleton fact, or nil.
func pointOf(f *bFact) *big.Int {
	if f.rng.Lo != nil && f.rng.Hi != nil && f.rng.Lo.Cmp(f.rng.Hi) == 0 {
		return f.rng.Lo
	}
	return nil
}

// builtinNumRange mirrors the truncate checker's literal-operand narrowing
// for masking/remainder/shift builtins, over the relational environment.
func (eng *boundsEngine) builtinNumRange(env boundsEnv, name string, call *ast.Call) *interval.I {
	if len(call.Args) != 2 {
		return nil
	}
	lit, ok := call.Args[1].(*ast.IntLit)
	if !ok {
		return nil
	}
	argT := types.Prune(eng.info.TypeOf(call.Args[0]))
	argRng := func() *interval.I {
		if f := eng.evalFact(env, call.Args[0]); f != nil {
			return f.rng
		}
		return nil
	}
	switch name {
	case "bitand":
		if lit.Value >= 0 {
			return interval.Of(0, lit.Value)
		}
	case "mod":
		if lit.Value > 0 {
			hi := big.NewInt(lit.Value - 1)
			if argT.Kind == types.KInt && argT.Signed {
				if r := argRng(); r != nil && r.Nonneg() {
					return interval.New(big.NewInt(0), hi)
				}
				return interval.New(new(big.Int).Neg(hi), hi)
			}
			return interval.New(big.NewInt(0), hi)
		}
	case "shr":
		if full := typeRange(argT); full != nil && lit.Value >= 0 && lit.Value < 64 &&
			argT.Kind == types.KInt && !argT.Signed {
			base := full
			if r := argRng(); r != nil && r.Nonneg() && r.Hi != nil {
				base = r
			}
			return interval.New(big.NewInt(0), new(big.Int).Rsh(base.Hi, uint(lit.Value)))
		}
	}
	return nil
}
