package analysis_test

import (
	"strings"
	"testing"

	"bitc/internal/analysis"
	"bitc/internal/source"
)

// ---------------------------------------------------------------------------
// escape: BITC-ESCAPE002 (use after region exit)
// ---------------------------------------------------------------------------

const msgHeader = `
(defstruct msg (v int64))
`

func TestUseAfterExitTable(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{
			// The canonical trap: the reference outlives the region and is
			// dereferenced after the extent ended on the only path.
			name: "assign-then-deref",
			src: `(define (f) int64
			        (let ((mutable keep (make msg :v 0)))
			          (with-region r
			            (set! keep (alloc-in r (make msg :v 1))))
			          (field keep v)))`,
			want: true,
		},
		{
			// Laundered through a call: no single expression ties the set!
			// to the region, only the interprocedural points-to sets do.
			name: "laundered-through-call",
			src: `(define (id (m msg)) msg m)
			      (define (f) int64
			        (let ((mutable keep (make msg :v 0)))
			          (with-region r
			            (set! keep (id (alloc-in r (make msg :v 1)))))
			          (field keep v)))`,
			want: true,
		},
		{
			// Dereference inside the region is fine.
			name: "deref-inside-region",
			src: `(define (f) int64
			        (with-region r
			          (let ((m (alloc-in r (make msg :v 1))))
			            (field m v))))`,
			want: false,
		},
		{
			// Overwritten with a heap object before the dereference: the
			// reference no longer points into the dead region.
			name: "reassigned-before-deref",
			src: `(define (f) int64
			        (let ((mutable keep (make msg :v 0)))
			          (with-region r
			            (set! keep (alloc-in r (make msg :v 1))))
			          (set! keep (make msg :v 2))
			          (field keep v)))`,
			want: false,
		},
		{
			// May-point-to a live heap object on one path: the must-ended
			// verdict does not hold for every pointee, so no error.
			name: "mixed-paths-not-definite",
			src: `(define (f (c bool)) int64
			        (let ((mutable keep (make msg :v 0)))
			          (with-region r
			            (if c
			                (set! keep (alloc-in r (make msg :v 1)))
			                ()))
			          (field keep v)))`,
			want: false,
		},
		{
			// Inner region died, outer is still open: dereferencing an
			// inner-region object after its exit still traps.
			name: "nested-inner-exit",
			src: `(define (f) int64
			        (with-region outer
			          (let ((mutable keep (alloc-in outer (make msg :v 0))))
			            (with-region inner
			              (set! keep (alloc-in inner (make msg :v 1))))
			            (field keep v))))`,
			want: true,
		},
		{
			// Copying the reference after exit is not a dereference; only
			// field/vector/chan operations trap.
			name: "copy-after-exit-no-deref",
			src: `(define (g (m msg)) unit ())
			      (define (f) unit
			        (let ((mutable keep (make msg :v 0)))
			          (with-region r
			            (set! keep (alloc-in r (make msg :v 1))))
			          (let ((h keep))
			            (g h))))`,
			want: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := runOn(t, msgHeader+tc.src)
			got := hasCode(rep, analysis.CodeUseAfterExit)
			if got != tc.want {
				t.Errorf("BITC-ESCAPE002 = %v, want %v (findings %v)",
					got, tc.want, rep.Findings)
			}
		})
	}
}

func TestUseAfterExitSeverityAndRelated(t *testing.T) {
	rep := runOn(t, msgHeader+`
	  (define (f) int64
	    (let ((mutable keep (make msg :v 0)))
	      (with-region r
	        (set! keep (alloc-in r (make msg :v 1))))
	      (field keep v)))`)
	found := false
	for _, f := range rep.Findings {
		if f.Code != analysis.CodeUseAfterExit {
			continue
		}
		found = true
		if f.Severity != source.Error {
			t.Errorf("ESCAPE002 severity = %v, want error", f.Severity)
		}
		if len(f.Related) == 0 {
			t.Error("ESCAPE002 finding has no allocation-site related span")
		}
	}
	if !found {
		t.Fatalf("ESCAPE002 not reported: %v", codesOf(rep))
	}
}

func TestEscapeRelatedAllocationSite(t *testing.T) {
	rep := runOn(t, msgHeader+`
	  (define (leak) msg
	    (with-region r
	      (let ((m (alloc-in r (make msg :v 1))))
	        m)))`)
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeEscape {
			if len(f.Related) == 0 {
				t.Error("ESCAPE001 finding has no allocation-site related span")
			}
			return
		}
	}
	t.Fatalf("ESCAPE001 not reported: %v", codesOf(rep))
}

// ---------------------------------------------------------------------------
// escape: suppression of both codes
// ---------------------------------------------------------------------------

func TestEscapeSuppressForm(t *testing.T) {
	rep := runOn(t, msgHeader+`
	  (define (leak) msg
	    (with-region r
	      (suppress "BITC-ESCAPE001"
	        (alloc-in r (make msg :v 1)))))`)
	if hasCode(rep, analysis.CodeEscape) {
		t.Fatalf("suppressed ESCAPE001 still reported: %v", rep.Findings)
	}
	if len(rep.Suppressed) == 0 {
		t.Fatal("suppressed finding not recorded")
	}
}

func TestUseAfterExitSuppressComment(t *testing.T) {
	rep := runOn(t, msgHeader+`
	  (define (f) int64
	    (let ((mutable keep (make msg :v 0)))
	      (with-region r
	        (set! keep (alloc-in r (make msg :v 1))))
	      (field keep v) ; bitc:ignore BITC-ESCAPE002
	      ))`)
	if hasCode(rep, analysis.CodeUseAfterExit) {
		t.Fatalf("suppressed ESCAPE002 still reported: %v", rep.Findings)
	}
	sup := false
	for _, f := range rep.Suppressed {
		if f.Code == analysis.CodeUseAfterExit {
			sup = true
		}
	}
	if !sup {
		t.Fatal("ESCAPE002 missing from the suppressed list")
	}
}

// ---------------------------------------------------------------------------
// race: aliased handles
// ---------------------------------------------------------------------------

func TestRaceThroughAliasedHandle(t *testing.T) {
	rep := runOn(t, `
	  (defstruct cell (v int64))
	  (define counter cell (make cell :v 0))
	  (define (direct) unit (set-field! counter v 1))
	  (define (aliased) unit
	    (let ((h counter))
	      (set-field! h v 2)))
	  (define (entry) unit
	    (let ((t (spawn (direct))))
	      (aliased)
	      (join t)))`)
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeRace && len(f.Related) > 0 {
			return
		}
	}
	t.Fatalf("race through the aliased handle not reported: %v", codesOf(rep))
}

func TestNoRaceOnDistinctObjects(t *testing.T) {
	// The handle points at a *different* allocation, so unifying by object
	// identity must not pair local-only's access with the global's. (The
	// spawned direct still races with itself — self-parallel — which is the
	// pre-existing verdict, not an aliasing artefact.)
	rep := runOn(t, `
	  (defstruct cell (v int64))
	  (define counter cell (make cell :v 0))
	  (define (direct) unit (set-field! counter v 1))
	  (define (local-only) int64
	    (let ((h (make cell :v 5)))
	      (set-field! h v 2)
	      (field h v)))
	  (define (entry) unit
	    (let ((t (spawn (direct))))
	      (local-only)
	      (join t)))`)
	for _, f := range rep.Findings {
		if f.Code != analysis.CodeRace {
			continue
		}
		if strings.Contains(f.Message, "local-only") {
			t.Fatalf("false race between distinct objects: %v", rep.Findings)
		}
		for _, rel := range f.Related {
			if strings.Contains(rel.Message, "local-only") {
				t.Fatalf("false race between distinct objects: %v", rep.Findings)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// deadstore: alias-aware field stores
// ---------------------------------------------------------------------------

func TestDeadFieldStorePositive(t *testing.T) {
	rep := runOn(t, `
	  (defstruct pair (a int64) (b int64))
	  (define (f) int64
	    (let ((p (make pair :a 1 :b 2)))
	      (set-field! p b 9)
	      (field p a)))`)
	found := false
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeDeadStore {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead field store not reported: %v", codesOf(rep))
	}
}

func TestDeadFieldStoreNegativeAliasRead(t *testing.T) {
	rep := runOn(t, `
	  (defstruct pair (a int64) (b int64))
	  (define (f) int64
	    (let ((p (make pair :a 1 :b 2)))
	      (let ((h p))
	        (set-field! p b 9)
	        (field h b))))`)
	if hasCode(rep, analysis.CodeDeadStore) {
		t.Fatalf("store observable through an alias flagged: %v", rep.Findings)
	}
}

func TestDeadFieldStoreNegativeEscapes(t *testing.T) {
	// The object leaks to an external, so the store may be observed by code
	// the analysis cannot see.
	rep := runOn(t, `
	  (defstruct pair (a int64) (b int64))
	  (external stash (-> (pair) unit) "stash")
	  (define (f) unit
	    (let ((p (make pair :a 1 :b 2)))
	      (set-field! p b 9)
	      (stash p)))`)
	if hasCode(rep, analysis.CodeDeadStore) {
		t.Fatalf("store on a leaked object flagged: %v", rep.Findings)
	}
}

func TestDeadFieldStoreNegativeGlobal(t *testing.T) {
	rep := runOn(t, `
	  (defstruct pair (a int64) (b int64))
	  (define g pair (make pair :a 1 :b 2))
	  (define (f) unit
	    (set-field! g b 9))`)
	for _, f := range rep.Findings {
		if f.Code == analysis.CodeDeadStore {
			t.Fatalf("store on a global-reachable object flagged: %v", rep.Findings)
		}
	}
}
