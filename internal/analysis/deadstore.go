package analysis

import (
	"strings"

	"bitc/internal/ast"
	"bitc/internal/source"
)

// The deadstore analyzer finds two flavours of wasted work:
//
//   - BITC-DEAD001: a (set! x e) whose stored value can never be read —
//     restricted to assignments at the top level of the let body that binds
//     x, with no later read of x in that body, so the verdict is exact;
//   - BITC-DEAD002: a let binding that is never used at all (or a mutable
//     binding that is written but never read).
//
// Names starting with '_' are exempt by convention.

// Dead-code lint codes.
const (
	CodeDeadStore     = "BITC-DEAD001"
	CodeUnusedBinding = "BITC-DEAD002"
)

var deadstoreAnalyzer = register(&Analyzer{
	Name:        "deadstore",
	Doc:         "dead stores and unused let bindings",
	Code:        CodeDeadStore,
	Codes:       []string{CodeDeadStore, CodeUnusedBinding},
	PerFunction: true,
	Run:         runDeadStore,
})

func runDeadStore(p *Pass) {
	for _, body := range p.Fn.Body {
		ast.Walk(body, func(e ast.Expr) bool {
			if let, ok := e.(*ast.Let); ok {
				checkLet(p, let)
			}
			return true
		})
	}
}

func checkLet(p *Pass, let *ast.Let) {
	bound := map[string]*ast.Binding{}
	for _, b := range let.Bindings {
		bound[b.Name] = b
	}

	// Unused bindings: no read anywhere in the body or in later bindings'
	// initialisers. Writes via set! are not reads, which distinguishes
	// "assigned but never read" from "never used".
	for i, b := range let.Bindings {
		if strings.HasPrefix(b.Name, "_") {
			continue
		}
		reads, writes := 0, 0
		var scan func(e ast.Expr)
		scan = func(e ast.Expr) {
			switch e := e.(type) {
			case *ast.VarRef:
				if e.Name == b.Name {
					reads++
				}
			case *ast.Set:
				if e.Name == b.Name {
					writes++
				}
				scan(e.Value)
			case *ast.Let:
				// An inner binding of the same name shadows: its body's uses
				// belong to the inner variable.
				shadows := false
				for _, inner := range e.Bindings {
					scan(inner.Init)
					if inner.Name == b.Name {
						shadows = true
					}
				}
				if !shadows {
					for _, s := range e.Body {
						scan(s)
					}
				}
			case *ast.DoTimes:
				scan(e.Count)
				if e.Var != b.Name {
					for _, s := range e.Body {
						scan(s)
					}
				}
			case *ast.Lambda:
				for _, p := range e.Params {
					if p.Name == b.Name {
						return
					}
				}
				for _, s := range e.Body {
					scan(s)
				}
			default:
				ast.Walk(e, func(sub ast.Expr) bool {
					if sub == e {
						return true
					}
					scan(sub)
					return false
				})
			}
		}
		for _, later := range let.Bindings[i+1:] {
			scan(later.Init)
		}
		for _, e := range let.Body {
			scan(e)
		}
		switch {
		case reads == 0 && writes == 0:
			p.Reportf(CodeUnusedBinding, source.Warning, b.Span(),
				"binding %s is never used", b.Name)
		case reads == 0 && writes > 0:
			p.Reportf(CodeUnusedBinding, source.Warning, b.Span(),
				"mutable binding %s is assigned but never read", b.Name)
		}
	}

	// Dead stores: a top-level (set! x e) statement in the body of the let
	// binding x, with no read of x in any later statement. Skipped entirely
	// when a lambda or spawned expression in the body captures x, since that
	// code can run after any statement.
	captured := map[string]bool{}
	for _, e := range let.Body {
		ast.Walk(e, func(sub ast.Expr) bool {
			var deferred []ast.Expr
			switch sub := sub.(type) {
			case *ast.Lambda:
				deferred = sub.Body
			case *ast.Spawn:
				deferred = []ast.Expr{sub.Expr}
			default:
				return true
			}
			for _, d := range deferred {
				ast.Walk(d, func(inner ast.Expr) bool {
					if v, ok := inner.(*ast.VarRef); ok && bound[v.Name] != nil {
						captured[v.Name] = true
					}
					return true
				})
			}
			return true
		})
	}
	for i, stmt := range let.Body {
		set, ok := stmt.(*ast.Set)
		if !ok || bound[set.Name] == nil || captured[set.Name] || strings.HasPrefix(set.Name, "_") {
			continue
		}
		readLater := false
		for _, later := range let.Body[i+1:] {
			// A later top-level (set! x e) whose RHS does not read x is a
			// definite overwrite: scanning stops and the store is dead.
			if kill, ok := later.(*ast.Set); ok && kill.Name == set.Name {
				readsSelf := false
				ast.Walk(kill.Value, func(sub ast.Expr) bool {
					if v, ok := sub.(*ast.VarRef); ok && v.Name == set.Name {
						readsSelf = true
					}
					return true
				})
				if !readsSelf {
					break
				}
			}
			ast.Walk(later, func(sub ast.Expr) bool {
				if v, ok := sub.(*ast.VarRef); ok && v.Name == set.Name {
					readLater = true
				}
				return true
			})
			if readLater {
				break
			}
		}
		if !readLater {
			p.Reportf(CodeDeadStore, source.Warning, set.Span(),
				"value stored to %s is never read", set.Name)
		}
	}
}
