package analysis

import (
	"sort"
	"strings"

	"bitc/internal/ast"
	"bitc/internal/cfg"
	"bitc/internal/dataflow"
	"bitc/internal/source"
)

// The deadstore analyzer finds two flavours of wasted work:
//
//   - BITC-DEAD001: a (set! x e) whose stored value can never be read,
//     decided by backward liveness over the function's CFG — the store is
//     dead exactly when x is not live immediately after it on any path —
//     or a (set-field! o f e) on an object whose field f is never loaded
//     anywhere in the program;
//   - BITC-DEAD002: a let binding that is never used at all (or a mutable
//     binding that is written but never read), decided by counting use/def
//     atoms of the alpha-renamed local (so shadowing never miscounts).
//
// Variables captured by a lambda or spawn are exempt from DEAD001: the
// closure can run after any store, so no store to them is provably dead.
// Field stores are judged through the points-to results, so a store
// observable through *any* aliased handle — a let-bound copy, a global the
// object reaches, a reference that leaked to unknown code — is never
// flagged; only stores into provably confined objects whose field no alias
// ever reads count as dead. Names starting with '_' are exempt by
// convention.

// Dead-code lint codes.
const (
	CodeDeadStore     = "BITC-DEAD001"
	CodeUnusedBinding = "BITC-DEAD002"
)

var deadstoreAnalyzer = register(&Analyzer{
	Name:          "deadstore",
	Doc:           "liveness-based dead stores, alias-aware dead field stores, and unused let bindings",
	Code:          CodeDeadStore,
	Codes:         []string{CodeDeadStore, CodeUnusedBinding},
	PerFunction:   true,
	NeedsCFG:      true,
	NeedsPointsTo: true,
	Run:           runDeadStore,
})

func runDeadStore(p *Pass) {
	g := p.CFG(nil)

	// Per-variable counts over the whole graph: reads (any non-WriteRef
	// use, including the read half of a self-update), writes (set!s, plus
	// captured set!s emitted as WriteRef uses), and capture flags.
	reads := map[string]int{}
	writes := map[string]int{}
	captured := map[string]bool{}
	for _, b := range g.Blocks {
		for _, a := range b.Atoms {
			switch a.Op {
			case cfg.OpUse:
				if a.Deferred {
					captured[a.Name] = true
				}
				if a.WriteRef {
					writes[a.Name]++
				} else {
					reads[a.Name]++
				}
			case cfg.OpDef:
				writes[a.Name]++
			}
		}
	}

	// Unused bindings.
	for _, name := range sortedDeclNames(g) {
		d := g.Decls[name]
		if d.Kind != cfg.DeclLet || strings.HasPrefix(d.Src, "_") {
			continue
		}
		switch {
		case reads[name] == 0 && writes[name] == 0:
			p.Reportf(CodeUnusedBinding, source.Warning, d.Binding.Span(),
				"binding %s is never used", d.Src)
		case reads[name] == 0 && writes[name] > 0:
			p.Reportf(CodeUnusedBinding, source.Warning, d.Binding.Span(),
				"mutable binding %s is assigned but never read", d.Src)
		}
	}

	// Dead stores: replay each block backward from its solved exit-live set
	// and flag defs whose value is dead. Reported only for let-bound
	// variables (parameter stores stay out of scope, as before), and only
	// when the variable is read somewhere — a never-read variable already
	// gets the clearer DEAD002 above.
	live := dataflow.Liveness(g)
	for _, b := range g.Blocks {
		after := make([]dataflow.NameSet, len(b.Atoms))
		l := live.In[b.Index].Clone()
		for i := len(b.Atoms) - 1; i >= 0; i-- {
			after[i] = l.Clone()
			l = dataflow.LivenessStep(l, b.Atoms[i])
		}
		for i, a := range b.Atoms {
			if a.Op != cfg.OpDef {
				continue
			}
			d := g.Decls[a.Name]
			if d == nil || d.Kind != cfg.DeclLet || strings.HasPrefix(d.Src, "_") {
				continue
			}
			if captured[a.Name] || reads[a.Name] == 0 {
				continue
			}
			if !after[i].Has(a.Name) {
				p.Reportf(CodeDeadStore, source.Warning, a.Expr.Span(),
					"value stored to %s is never read", d.Src)
			}
		}
	}

	deadFieldStores(p)
}

// deadFieldStores flags (set-field! o f e) when no execution can observe
// the stored value: every object o may point to is allocated in a known
// function, never leaks to unknown code, is unreachable from any global,
// and has no load of field f anywhere in the program. Any alias of the
// object shares its abstract identity, so a read through a different handle
// (or any escape that could hide one) keeps the store alive.
func deadFieldStores(p *Pass) {
	pts := p.PointsTo
	if pts == nil {
		return
	}
	visit := func(e ast.Expr) bool {
		fs, ok := e.(*ast.FieldSet)
		if !ok {
			return true
		}
		objs := pts.ExprObjects(fs.Expr)
		if len(objs) == 0 {
			return true
		}
		for _, o := range objs {
			if o.Fn == "" || pts.GlobalReachable(o) || pts.FieldLoaded(o, fs.Name) {
				return true
			}
		}
		p.Reportf(CodeDeadStore, source.Warning, fs.Span(),
			"field %s is never read through any alias of this object", fs.Name)
		return true
	}
	for _, e := range p.Fn.Body {
		ast.Walk(e, visit)
	}
}

func sortedDeclNames(g *cfg.Graph) []string {
	out := make([]string, 0, len(g.Decls))
	for name := range g.Decls {
		out = append(out, name)
	}
	// Sorting by name is enough for determinism; the driver re-sorts
	// findings by span anyway.
	sort.Strings(out)
	return out
}
