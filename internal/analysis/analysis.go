// Package analysis is bitc's unified static-analysis driver: a small
// pass-manager in the go/analysis style that runs every registered checker
// over a type-checked program and collects findings into one report with
// stable lint codes, severities, and spans.
//
// The paper's challenge 1 (application constraint checking) and challenge 4
// (managing shared state) both argue that checking must be *integrated* —
// one harness, one diagnostics pipeline, machine-readable verdicts — rather
// than a pile of disconnected tools. Before this package the repo had three
// analysis islands (lockset races, region escapes, VC verification) with
// incompatible report types; here the first two are ported onto a shared
// Analyzer interface and joined by five new checkers.
package analysis

import (
	"fmt"
	"sort"

	"bitc/internal/ast"
	"bitc/internal/cfg"
	"bitc/internal/pointsto"
	"bitc/internal/source"
	"bitc/internal/types"
)

// Finding is one diagnostic produced by an analyzer. Code is a stable
// machine-readable lint code (e.g. BITC-RACE001) that CI can match on.
type Finding struct {
	Code     string
	Severity source.Severity
	Span     source.Span
	Message  string
	Analyzer string
	Related  []Related
}

// Related points at a second location that participates in a finding (the
// other access of a race, the reverse lock acquisition of a deadlock, ...).
// File names the file the span belongs to when it differs from the primary
// finding's file ("" means same file); renderers must include it so related
// locations stay meaningful in multi-file reports.
type Related struct {
	Span    source.Span
	Message string
	File    string
}

// Pass carries the inputs of one analyzer invocation and collects its
// findings. Each invocation gets its own Pass, so analyzers never need
// locking even though the driver runs them concurrently.
type Pass struct {
	Prog *ast.Program
	Info *types.Info
	// Fn is the function under analysis for per-function analyzers, nil for
	// whole-program analyzers.
	Fn *ast.DefineFunc
	// Summaries is the interprocedural summary set, populated by the driver
	// before any analyzer with NeedsSummaries runs.
	Summaries *Summaries
	// PointsTo is the whole-program Andersen analysis, populated by the
	// driver before any analyzer with NeedsPointsTo runs.
	PointsTo *pointsto.Result

	cfgs     map[*ast.DefineFunc]*cfg.Graph
	analyzer *Analyzer
	findings []Finding
}

// CFG returns the control-flow graph of fn (or of p.Fn when fn is nil). The
// driver prebuilds graphs for every function when a selected analyzer sets
// NeedsCFG; the graphs are shared read-only across concurrent passes.
func (p *Pass) CFG(fn *ast.DefineFunc) *cfg.Graph {
	if fn == nil {
		fn = p.Fn
	}
	return p.cfgs[fn]
}

// Report appends a finding, stamping the analyzer name.
func (p *Pass) Report(f Finding) {
	f.Analyzer = p.analyzer.Name
	if f.Code == "" {
		f.Code = p.analyzer.Code
	}
	p.findings = append(p.findings, f)
}

// Reportf formats and appends a finding under the given code.
func (p *Pass) Reportf(code string, sev source.Severity, span source.Span, format string, args ...any) {
	p.Report(Finding{Code: code, Severity: sev, Span: span, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one static checker. PerFunction analyzers are invoked once per
// top-level function (and may run concurrently across functions);
// whole-program analyzers are invoked once with Fn == nil.
type Analyzer struct {
	Name string // short identifier used by -enable/-disable
	Doc  string // one-line description
	Code string // primary lint code (analyzers may emit further codes)
	// Codes lists every lint code this analyzer can emit, for help output.
	Codes       []string
	PerFunction bool
	// NeedsCFG asks the driver to prebuild per-function control-flow graphs
	// before this analyzer runs; NeedsSummaries asks for the interprocedural
	// function summaries (computed bottom-up over call-graph SCCs);
	// NeedsPointsTo asks for the whole-program Andersen points-to analysis
	// (which the summaries also consume for alias-aware shared accesses).
	// All are computed once per driver run and shared by every dependent
	// pass.
	NeedsCFG       bool
	NeedsSummaries bool
	NeedsPointsTo  bool
	Run            func(*Pass)
}

// registry holds every known analyzer in registration order.
var registry []*Analyzer

func register(a *Analyzer) *Analyzer {
	if len(a.Codes) == 0 {
		a.Codes = []string{a.Code}
	}
	registry = append(registry, a)
	return a
}

// Registry returns all registered analyzers sorted by name.
func Registry() []*Analyzer {
	out := append([]*Analyzer(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName looks up a registered analyzer.
func ByName(name string) *Analyzer {
	for _, a := range registry {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// SortFindings orders findings deterministically: by span start, span end,
// code, then message. The parallel driver relies on this to produce output
// byte-identical to a sequential run regardless of scheduling.
func SortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Span.Start != b.Span.Start {
			return a.Span.Start < b.Span.Start
		}
		if a.Span.End != b.Span.End {
			return a.Span.End < b.Span.End
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		return a.Message < b.Message
	})
}
