package analysis

import (
	"bitc/internal/ast"
	"bitc/internal/source"
)

// The definit analyzer flags reads of `mutable` locals that happen before
// the first `set!` when the binding's initialiser is a zero-value
// placeholder (0, 0.0, #f, ""): the code observes the dummy value, which is
// almost always a declare-now-assign-later slip. Two idioms are exempt
// because their placeholder reads are meaningful: self-updates
// `(set! x (+ x e))`, and loops that assign the variable somewhere in their
// body (induction variables and accumulators read the previous iteration's
// value on every pass after the first).

// CodeDefInit is emitted for a placeholder read before first assignment.
const CodeDefInit = "BITC-INIT001"

var definitAnalyzer = register(&Analyzer{
	Name:        "definit",
	Doc:         "definite initialization: mutable locals read before their first set!",
	Code:        CodeDefInit,
	PerFunction: true,
	Run:         runDefInit,
})

func runDefInit(p *Pass) {
	for _, body := range p.Fn.Body {
		ast.Walk(body, func(e ast.Expr) bool {
			if let, ok := e.(*ast.Let); ok {
				for _, b := range let.Bindings {
					if b.Mutable && placeholderInit(b.Init) {
						checkDefInit(p, b, let.Body)
					}
				}
			}
			return true
		})
	}
}

// placeholderInit recognises literal zero values used as "no value yet".
func placeholderInit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value == 0
	case *ast.FloatLit:
		return e.Value == 0
	case *ast.BoolLit:
		return !e.Value
	case *ast.StringLit:
		return e.Value == ""
	}
	return false
}

// definitScan walks one binding's scope in evaluation order.
type definitScan struct {
	pass     *Pass
	name     string
	binding  *ast.Binding
	reported bool
}

func checkDefInit(p *Pass, b *ast.Binding, body []ast.Expr) {
	s := &definitScan{pass: p, name: b.Name, binding: b}
	assigned := false
	for _, e := range body {
		assigned = s.scan(e, assigned)
		if s.reported {
			return
		}
	}
}

// scan flags placeholder reads in e given the definitely-assigned state on
// entry, and returns whether the variable is definitely assigned after e.
func (s *definitScan) scan(e ast.Expr, assigned bool) bool {
	if s.reported || e == nil {
		return assigned
	}
	switch e := e.(type) {
	case *ast.VarRef:
		if e.Name == s.name && !assigned {
			s.reported = true
			s.pass.Report(Finding{
				Code:     CodeDefInit,
				Severity: source.Warning,
				Span:     e.Span(),
				Message:  "mutable local " + s.name + " is read before its first set!; it still holds its placeholder initialiser",
				Related: []Related{{
					Span:    s.binding.Span(),
					Message: s.name + " declared mutable here with a placeholder value",
				}},
			})
		}
		return assigned
	case *ast.Set:
		if e.Name == s.name {
			// Self-update idiom: reads of x inside the RHS of (set! x ...)
			// are deliberate uses of the current value.
			return true
		}
		return s.scan(e.Value, assigned)
	case *ast.If:
		assigned = s.scan(e.Cond, assigned)
		aThen := s.scan(e.Then, assigned)
		aElse := assigned
		if e.Else != nil {
			aElse = s.scan(e.Else, assigned)
		}
		return aThen && aElse
	case *ast.While:
		return s.scanLoop(e, e.Body, append([]ast.Expr{e.Cond}, e.Body...), assigned)
	case *ast.DoTimes:
		assigned = s.scan(e.Count, assigned)
		if e.Var == s.name {
			return assigned // dotimes variable shadows
		}
		return s.scanLoop(e, e.Body, e.Body, assigned)
	case *ast.Let:
		for _, b := range e.Bindings {
			assigned = s.scan(b.Init, assigned)
			if b.Name == s.name {
				return s.scanShadowed(e.Body, assigned)
			}
		}
		for _, b := range e.Body {
			assigned = s.scan(b, assigned)
		}
		return assigned
	case *ast.Lambda:
		for _, p := range e.Params {
			if p.Name == s.name {
				return assigned
			}
		}
		for _, b := range e.Body {
			s.scan(b, assigned) // deferred execution: state does not advance
		}
		return assigned
	case *ast.Begin:
		for _, b := range e.Body {
			assigned = s.scan(b, assigned)
		}
		return assigned
	case *ast.Call:
		assigned = s.scan(e.Fn, assigned)
		for _, a := range e.Args {
			assigned = s.scan(a, assigned)
		}
		return assigned
	case *ast.Case:
		assigned = s.scan(e.Scrut, assigned)
		all := true
		for _, c := range e.Clauses {
			a := assigned
			for _, b := range c.Body {
				a = s.scan(b, a)
			}
			all = all && a
		}
		if len(e.Clauses) == 0 {
			return assigned
		}
		return all
	default:
		ast.Walk(e, func(sub ast.Expr) bool {
			if sub == e {
				return true
			}
			assigned = s.scan(sub, assigned)
			return false
		})
		return assigned
	}
}

// scanLoop handles While/DoTimes: if the loop assigns the variable anywhere
// in its body, reads inside are the accumulator/induction idiom (they see
// the previous iteration's assignment), and the placeholder is the idiom's
// deliberate base case — so the variable counts as assigned afterwards too.
func (s *definitScan) scanLoop(loop ast.Expr, body []ast.Expr, walkOrder []ast.Expr, assigned bool) bool {
	setsVar := false
	for _, b := range body {
		ast.Walk(b, func(sub ast.Expr) bool {
			if set, ok := sub.(*ast.Set); ok && set.Name == s.name {
				setsVar = true
			}
			return true
		})
	}
	if setsVar {
		return true
	}
	for _, b := range walkOrder {
		assigned = s.scan(b, assigned)
	}
	return assigned
}

// scanShadowed keeps scanning only for completeness once an inner binding
// shadows the name; reads inside refer to the inner variable.
func (s *definitScan) scanShadowed(body []ast.Expr, assigned bool) bool {
	return assigned
}
