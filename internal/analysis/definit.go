package analysis

import (
	"sort"

	"bitc/internal/ast"
	"bitc/internal/cfg"
	"bitc/internal/dataflow"
	"bitc/internal/source"
)

// The definit analyzer flags reads of `mutable` locals that happen before
// the first `set!` when the binding's initialiser is a zero-value
// placeholder (0, 0.0, #f, ""): the code observes the dummy value, which is
// almost always a declare-now-assign-later slip.
//
// It is a definite-assignment dataflow problem over the function's CFG
// (forward, must, intersection at joins): a read is flagged only when some
// path from the declaration reaches it without a set!, so assigning in both
// arms of an `if` — or in every case clause — counts, while assigning in
// only one arm does not. Two idioms are exempt because their placeholder
// reads are meaningful: self-updates `(set! x (+ x e))`, and loops that
// assign the variable somewhere in their body (induction variables and
// accumulators read the previous iteration's value on every pass after the
// first), which are encoded by force-assigning the variable at the loop
// header.

// CodeDefInit is emitted for a placeholder read before first assignment.
const CodeDefInit = "BITC-INIT001"

var definitAnalyzer = register(&Analyzer{
	Name:        "definit",
	Doc:         "flow-sensitive definite initialization: mutable locals read before their first set!",
	Code:        CodeDefInit,
	PerFunction: true,
	NeedsCFG:    true,
	Run:         runDefInit,
})

func runDefInit(p *Pass) {
	g := p.CFG(nil)
	tracked := dataflow.NameSet{}
	for name, d := range g.Decls {
		if d.Kind == cfg.DeclLet && d.Binding != nil && d.Binding.Mutable && placeholderInit(d.Binding.Init) {
			tracked[name] = struct{}{}
		}
	}
	if len(tracked) == 0 {
		return
	}

	// Placeholder initialisers do not count as assignments; any other
	// declaration of a tracked-by-name variable (shadowing) does.
	prob := dataflow.NewMustAssign(tracked, func(d *cfg.Decl) bool {
		return !tracked.Has(d.Name)
	})

	// Loop exemption: a variable assigned anywhere in a loop (including via
	// a captured set! in a closure built there) is force-assigned at the
	// loop header, so reads inside and after the loop see the accumulator
	// idiom, while reads before the loop are still checked.
	extra := map[int]dataflow.NameSet{}
	for _, head := range g.Blocks {
		if head.Loop == nil {
			continue
		}
		assigns := dataflow.NameSet{}
		for _, lb := range g.LoopBlocks(head) {
			for _, a := range lb.Atoms {
				if !tracked.Has(a.Name) {
					continue
				}
				if a.Op == cfg.OpDef || (a.Op == cfg.OpUse && a.WriteRef) {
					assigns[a.Name] = struct{}{}
				}
			}
		}
		if len(assigns) > 0 {
			extra[head.Index] = assigns
		}
	}
	prob.Extra = extra

	res := dataflow.Solve[dataflow.NameSet](g, prob)

	// Replay each block from its solved entry fact and record the earliest
	// unassigned read per variable.
	bad := map[string]source.Span{}
	for _, b := range g.Blocks {
		assigned := res.In[b.Index].Clone()
		if ex := extra[b.Index]; ex != nil {
			for k := range ex {
				assigned[k] = struct{}{}
			}
		}
		for _, a := range b.Atoms {
			if a.Op == cfg.OpUse && tracked.Has(a.Name) &&
				!a.WriteRef && !a.SelfUpdate && !assigned.Has(a.Name) {
				sp := a.Expr.Span()
				if old, ok := bad[a.Name]; !ok || sp.Start < old.Start {
					bad[a.Name] = sp
				}
			}
			assigned = prob.Step(assigned, a)
		}
	}

	names := make([]string, 0, len(bad))
	for name := range bad {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := g.Decls[name]
		p.Report(Finding{
			Code:     CodeDefInit,
			Severity: source.Warning,
			Span:     bad[name],
			Message:  "mutable local " + d.Src + " is read before its first set!; it still holds its placeholder initialiser",
			Related: []Related{{
				Span:    d.Binding.Span(),
				Message: d.Src + " declared mutable here with a placeholder value",
			}},
		})
	}
}

// placeholderInit recognises literal zero values used as "no value yet".
func placeholderInit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value == 0
	case *ast.FloatLit:
		return e.Value == 0
	case *ast.BoolLit:
		return !e.Value
	case *ast.StringLit:
		return e.Value == ""
	}
	return false
}
