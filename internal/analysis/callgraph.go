package analysis

import (
	"sort"

	"bitc/internal/ast"
)

// CallGraph records which defined functions call which others. Calls are
// collected from everywhere in a function body, including lambda and spawn
// bodies (the closure may run later, but the callee relationship holds for
// summary purposes). Only calls to functions defined in the program appear;
// builtins are ignored.
type CallGraph struct {
	Funcs map[string]*ast.DefineFunc
	Names []string // sorted function names
	// Callees[f] lists the defined functions f calls, sorted, deduplicated.
	Callees map[string][]string
	// CalledByOther[f] reports that some function other than f calls f
	// (self-recursion does not count); the complement set is the entry
	// points the race analysis walks.
	CalledByOther map[string]bool
}

// BuildCallGraph scans a program's function bodies.
func BuildCallGraph(prog *ast.Program) *CallGraph {
	g := &CallGraph{
		Funcs:         map[string]*ast.DefineFunc{},
		Callees:       map[string][]string{},
		CalledByOther: map[string]bool{},
	}
	for _, d := range prog.Defs {
		if fn, ok := d.(*ast.DefineFunc); ok {
			g.Funcs[fn.Name] = fn
			g.Names = append(g.Names, fn.Name)
		}
	}
	sort.Strings(g.Names)
	for _, name := range g.Names {
		fn := g.Funcs[name]
		seen := map[string]bool{}
		for _, body := range fn.Body {
			ast.Walk(body, func(e ast.Expr) bool {
				if call, ok := e.(*ast.Call); ok {
					if v, ok := call.Fn.(*ast.VarRef); ok && g.Funcs[v.Name] != nil {
						if !seen[v.Name] {
							seen[v.Name] = true
							g.Callees[name] = append(g.Callees[name], v.Name)
						}
						if v.Name != name {
							g.CalledByOther[v.Name] = true
						}
					}
				}
				return true
			})
		}
		sort.Strings(g.Callees[name])
	}
	return g
}

// NewCallGraphFromCallees builds a call graph without walking any AST:
// calleesOf returns, for each defined function's name, the call heads
// observed in its body (unsorted and unfiltered — typically cached traits).
// Heads that are not defined functions are dropped, so the result is
// identical to BuildCallGraph over the same program.
func NewCallGraphFromCallees(prog *ast.Program, calleesOf func(name string) []string) *CallGraph {
	g := &CallGraph{
		Funcs:         make(map[string]*ast.DefineFunc, len(prog.Defs)),
		Callees:       make(map[string][]string, len(prog.Defs)),
		CalledByOther: make(map[string]bool, len(prog.Defs)),
	}
	g.Names = make([]string, 0, len(prog.Defs))
	for _, d := range prog.Defs {
		if fn, ok := d.(*ast.DefineFunc); ok {
			g.Funcs[fn.Name] = fn
			g.Names = append(g.Names, fn.Name)
		}
	}
	sort.Strings(g.Names)
	for _, name := range g.Names {
		// Callee lists are short; a linear dedup scan beats a per-function
		// map on the warm path.
		var list []string
		for _, callee := range calleesOf(name) {
			if g.Funcs[callee] == nil {
				continue
			}
			dup := false
			for _, x := range list {
				if x == callee {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			list = append(list, callee)
			if callee != name {
				g.CalledByOther[callee] = true
			}
		}
		if len(list) > 0 {
			sort.Strings(list)
			g.Callees[name] = list
		}
	}
	return g
}

// SCCs returns the strongly connected components of the call graph in
// bottom-up (reverse topological) order: every callee SCC precedes its
// callers, so summaries computed in this order only depend on finished ones
// — except within an SCC, where the summary engine iterates to a fixpoint.
// The result is deterministic: roots are visited in sorted name order.
func (g *CallGraph) SCCs() [][]string {
	// Tarjan's algorithm over integer node ids (one name→id map, flat
	// visit-state arrays); components pop in reverse topological order of
	// the condensation because a caller's component cannot complete before
	// its callees' components have been emitted.
	n := len(g.Names)
	idx := make(map[string]int32, n)
	for i, name := range g.Names {
		idx[name] = int32(i)
	}
	index := make([]int32, n) // 1-based visit order; 0 = unvisited
	low := make([]int32, n)
	onStack := make([]bool, n)
	var stack []int32
	var sccs [][]string
	next := int32(0)

	var strongconnect func(v int32)
	strongconnect = func(v int32) {
		next++
		index[v] = next
		low[v] = next
		stack = append(stack, v)
		onStack[v] = true
		for _, cname := range g.Callees[g.Names[v]] {
			w := idx[cname]
			if index[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, g.Names[w])
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			sccs = append(sccs, comp)
		}
	}
	for v := int32(0); v < int32(n); v++ {
		if index[v] == 0 {
			strongconnect(v)
		}
	}
	return sccs
}
