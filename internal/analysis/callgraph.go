package analysis

import (
	"sort"

	"bitc/internal/ast"
)

// CallGraph records which defined functions call which others. Calls are
// collected from everywhere in a function body, including lambda and spawn
// bodies (the closure may run later, but the callee relationship holds for
// summary purposes). Only calls to functions defined in the program appear;
// builtins are ignored.
type CallGraph struct {
	Funcs map[string]*ast.DefineFunc
	Names []string // sorted function names
	// Callees[f] lists the defined functions f calls, sorted, deduplicated.
	Callees map[string][]string
	// CalledByOther[f] reports that some function other than f calls f
	// (self-recursion does not count); the complement set is the entry
	// points the race analysis walks.
	CalledByOther map[string]bool
}

// BuildCallGraph scans a program's function bodies.
func BuildCallGraph(prog *ast.Program) *CallGraph {
	g := &CallGraph{
		Funcs:         map[string]*ast.DefineFunc{},
		Callees:       map[string][]string{},
		CalledByOther: map[string]bool{},
	}
	for _, d := range prog.Defs {
		if fn, ok := d.(*ast.DefineFunc); ok {
			g.Funcs[fn.Name] = fn
			g.Names = append(g.Names, fn.Name)
		}
	}
	sort.Strings(g.Names)
	for _, name := range g.Names {
		fn := g.Funcs[name]
		seen := map[string]bool{}
		for _, body := range fn.Body {
			ast.Walk(body, func(e ast.Expr) bool {
				if call, ok := e.(*ast.Call); ok {
					if v, ok := call.Fn.(*ast.VarRef); ok && g.Funcs[v.Name] != nil {
						if !seen[v.Name] {
							seen[v.Name] = true
							g.Callees[name] = append(g.Callees[name], v.Name)
						}
						if v.Name != name {
							g.CalledByOther[v.Name] = true
						}
					}
				}
				return true
			})
		}
		sort.Strings(g.Callees[name])
	}
	return g
}

// SCCs returns the strongly connected components of the call graph in
// bottom-up (reverse topological) order: every callee SCC precedes its
// callers, so summaries computed in this order only depend on finished ones
// — except within an SCC, where the summary engine iterates to a fixpoint.
// The result is deterministic: roots are visited in sorted name order.
func (g *CallGraph) SCCs() [][]string {
	// Tarjan's algorithm; components pop in reverse topological order of the
	// condensation because a caller's component cannot complete before its
	// callees' components have been emitted.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range g.Callees[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			sccs = append(sccs, comp)
		}
	}
	for _, name := range g.Names {
		if _, seen := index[name]; !seen {
			strongconnect(name)
		}
	}
	return sccs
}
