package analysis

import (
	"math/big"

	"bitc/internal/ast"
	"bitc/internal/source"
	"bitc/internal/types"
)

// The truncate analyzer flags explicit-width casts that can lose bits. It is
// flow-insensitive but carries a "value-range lite": literals, masked
// values, remainders, and nested casts get tight ranges, everything else the
// full range of its type — so (cast uint8 (bitand x 0xFF)) is clean while
// (cast uint8 x) on an int64 x is flagged.

// Truncation lint codes.
const (
	CodeTruncate   = "BITC-TRUNC001" // integer cast may discard significant bits
	CodeFloatTrunc = "BITC-TRUNC002" // float-to-int cast discards the fraction
)

var truncateAnalyzer = register(&Analyzer{
	Name:        "truncate",
	Doc:         "explicit-width casts that can lose bits (value-range lite)",
	Code:        CodeTruncate,
	Codes:       []string{CodeTruncate, CodeFloatTrunc},
	PerFunction: true,
	Run:         runTruncate,
})

func runTruncate(p *Pass) {
	for _, body := range p.Fn.Body {
		ast.Walk(body, func(e ast.Expr) bool {
			cast, ok := e.(*ast.Cast)
			if !ok {
				return true
			}
			src := p.Info.TypeOf(cast.Expr)
			dst := p.Info.TypeOf(cast)
			switch {
			case src.Kind == types.KFloat && dst.Kind == types.KInt:
				p.Reportf(CodeFloatTrunc, source.Note, cast.Span(),
					"cast from %s to %s discards the fractional part and may overflow", src, dst)
			case intLike(src) && intLike(dst):
				sr := rangeOfExpr(p.Info, cast.Expr)
				dr := typeRange(dst)
				if sr == nil || dr == nil {
					return true
				}
				if sr.lo.Cmp(dr.lo) < 0 || sr.hi.Cmp(dr.hi) > 0 {
					p.Reportf(CodeTruncate, source.Warning, cast.Span(),
						"cast from %s to %s may truncate: source range [%s, %s] exceeds target range [%s, %s]",
						src, dst, sr.lo, sr.hi, dr.lo, dr.hi)
				}
			}
			return true
		})
	}
}

func intLike(t *types.Type) bool {
	return t.Kind == types.KInt || t.Kind == types.KChar
}

// valueRange is a closed interval of possible values.
type valueRange struct {
	lo, hi *big.Int
}

func newRange(lo, hi *big.Int) *valueRange { return &valueRange{lo: lo, hi: hi} }

func within(inner, outer *valueRange) bool {
	return inner.lo.Cmp(outer.lo) >= 0 && inner.hi.Cmp(outer.hi) <= 0
}

// typeRange returns the representable interval of an integer-like type.
func typeRange(t *types.Type) *valueRange {
	switch t.Kind {
	case types.KChar:
		return newRange(big.NewInt(0), big.NewInt(0x10FFFF))
	case types.KInt:
		bits := t.Bits
		if bits == 0 {
			bits = 64
		}
		one := big.NewInt(1)
		if t.Signed {
			hi := new(big.Int).Lsh(one, uint(bits-1))
			lo := new(big.Int).Neg(hi)
			return newRange(lo, new(big.Int).Sub(hi, one))
		}
		hi := new(big.Int).Lsh(one, uint(bits))
		return newRange(big.NewInt(0), new(big.Int).Sub(hi, one))
	}
	return nil
}

// rangeOfExpr computes a conservative interval for e, or nil when e's type
// is not integer-like.
func rangeOfExpr(info *types.Info, e ast.Expr) *valueRange {
	t := types.Prune(info.TypeOf(e))
	full := typeRange(t)
	switch e := e.(type) {
	case *ast.IntLit:
		v := big.NewInt(e.Value)
		return newRange(v, v)
	case *ast.CharLit:
		v := big.NewInt(int64(e.Value))
		return newRange(v, v)
	case *ast.Cast:
		inner := rangeOfExpr(info, e.Expr)
		if inner != nil && full != nil && within(inner, full) {
			return inner // value preserved by the cast
		}
		return full
	case *ast.Begin:
		if n := len(e.Body); n > 0 {
			if r := rangeOfExpr(info, e.Body[n-1]); r != nil {
				return r
			}
		}
		return full
	case *ast.Call:
		if r := builtinRange(info, e); r != nil {
			return r
		}
		return full
	}
	return full
}

// builtinRange narrows the result of masking/remainder/shift builtins with
// literal operands.
func builtinRange(info *types.Info, call *ast.Call) *valueRange {
	v, ok := call.Fn.(*ast.VarRef)
	if !ok || len(call.Args) != 2 {
		return nil
	}
	lit, ok := call.Args[1].(*ast.IntLit)
	if !ok {
		return nil
	}
	argT := types.Prune(info.TypeOf(call.Args[0]))
	switch v.Name {
	case "bitand":
		if lit.Value >= 0 {
			return newRange(big.NewInt(0), big.NewInt(lit.Value))
		}
	case "mod":
		if lit.Value > 0 {
			hi := big.NewInt(lit.Value - 1)
			if argT.Kind == types.KInt && argT.Signed {
				return newRange(new(big.Int).Neg(hi), hi)
			}
			return newRange(big.NewInt(0), hi)
		}
	case "shr":
		if full := typeRange(argT); full != nil && lit.Value >= 0 && lit.Value < 64 &&
			argT.Kind == types.KInt && !argT.Signed {
			return newRange(big.NewInt(0), new(big.Int).Rsh(full.hi, uint(lit.Value)))
		}
	}
	return nil
}
