package analysis

import (
	"math/big"

	"bitc/internal/ast"
	"bitc/internal/cfg"
	"bitc/internal/dataflow"
	"bitc/internal/dataflow/interval"
	"bitc/internal/source"
	"bitc/internal/types"
)

// The truncate analyzer flags explicit-width casts that can lose bits. It
// runs an interval analysis over the function's CFG: literals, masked
// values, remainders, and nested casts get tight ranges; locals carry the
// range of their last assignment; and branch conditions refine ranges along
// each edge — so inside `(if (< x 256) ...)` a `(cast uint8 x)` is clean
// while the same cast outside is flagged. The interval domain itself lives
// in internal/dataflow/interval, shared with the bounds prover; here every
// range stays finite (every bound derives from a literal, a type bound, or
// finitely many ±1 refinement steps), so the fixpoint terminates without
// widening.

// Truncation lint codes.
const (
	CodeTruncate   = "BITC-TRUNC001" // integer cast may discard significant bits
	CodeFloatTrunc = "BITC-TRUNC002" // float-to-int cast discards the fraction
)

var truncateAnalyzer = register(&Analyzer{
	Name:        "truncate",
	Doc:         "explicit-width casts that can lose bits (branch-refined value ranges)",
	Code:        CodeTruncate,
	Codes:       []string{CodeTruncate, CodeFloatTrunc},
	PerFunction: true,
	NeedsCFG:    true,
	Run:         runTruncate,
})

func runTruncate(p *Pass) {
	g := p.CFG(nil)
	tf := newTruncFlow(p.Info, g)
	res := dataflow.Solve[rangeEnv](g, tf)

	for _, b := range g.Blocks {
		env := res.In[b.Index]
		for _, a := range b.Atoms {
			if cast, ok := a.Expr.(*ast.Cast); ok && a.Op == cfg.OpEval {
				checkEnv := env
				if a.Deferred || !env.reached {
					// Deferred code runs at an unknown later point, and a
					// refinement-unreachable block has no flow facts: check
					// against plain type ranges either way.
					checkEnv = rangeEnv{}
				}
				tf.checkCast(p, cast, checkEnv)
			}
			env = tf.step(env, a)
		}
	}
}

func (tf *truncFlow) checkCast(p *Pass, cast *ast.Cast, env rangeEnv) {
	src := p.Info.TypeOf(cast.Expr)
	dst := p.Info.TypeOf(cast)
	switch {
	case src.Kind == types.KFloat && dst.Kind == types.KInt:
		p.Reportf(CodeFloatTrunc, source.Note, cast.Span(),
			"cast from %s to %s discards the fractional part and may overflow", src, dst)
	case intLike(src) && intLike(dst):
		sr := tf.rangeOf(env, cast.Expr)
		dr := typeRange(dst)
		if sr == nil || dr == nil {
			return
		}
		if sr.Lo.Cmp(dr.Lo) < 0 || sr.Hi.Cmp(dr.Hi) > 0 {
			p.Reportf(CodeTruncate, source.Warning, cast.Span(),
				"cast from %s to %s may truncate: source range [%s, %s] exceeds target range [%s, %s]",
				src, dst, sr.Lo, sr.Hi, dr.Lo, dr.Hi)
		}
	}
}

func intLike(t *types.Type) bool {
	return t.Kind == types.KInt || t.Kind == types.KChar
}

// typeRange returns the representable interval of an integer-like type, or
// nil for types without one. The result always has finite bounds.
func typeRange(t *types.Type) *interval.I {
	switch t.Kind {
	case types.KChar:
		return interval.Of(0, 0x10FFFF)
	case types.KInt:
		bits := t.Bits
		if bits == 0 {
			bits = 64
		}
		if t.Signed {
			return interval.Signed(bits)
		}
		return interval.Unsigned(bits)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Interval dataflow
// ---------------------------------------------------------------------------

// rangeEnv is the dataflow fact: narrowed ranges for locals whose current
// value is known to fit an interval tighter than its type. An absent key
// means the full type range; reached distinguishes the bottom element
// (no path reaches this point) from "reachable, nothing narrowed".
type rangeEnv struct {
	reached bool
	vars    map[string]*interval.I
}

func (e rangeEnv) clone() rangeEnv {
	out := rangeEnv{reached: e.reached, vars: make(map[string]*interval.I, len(e.vars))}
	for k, v := range e.vars {
		out.vars[k] = v
	}
	return out
}

// truncFlow is the forward interval problem with branch refinement.
type truncFlow struct {
	info *types.Info
	g    *cfg.Graph
	// volatile holds locals a closure may assign (a deferred WriteRef use
	// exists): their ranges are never tracked, since the write can happen at
	// any point relative to this code.
	volatile map[string]bool
}

func newTruncFlow(info *types.Info, g *cfg.Graph) *truncFlow {
	tf := &truncFlow{info: info, g: g, volatile: map[string]bool{}}
	for _, b := range g.Blocks {
		for _, a := range b.Atoms {
			if a.Op == cfg.OpUse && a.Deferred && a.WriteRef {
				tf.volatile[a.Name] = true
			}
		}
	}
	return tf
}

func (tf *truncFlow) Direction() dataflow.Direction { return dataflow.Forward }
func (tf *truncFlow) Boundary() rangeEnv            { return rangeEnv{reached: true} }
func (tf *truncFlow) Init() rangeEnv                { return rangeEnv{} }

// Meet is the interval hull, dropping any variable not narrowed on both
// sides; the bottom element is the identity.
func (tf *truncFlow) Meet(a, b rangeEnv) rangeEnv {
	if !a.reached {
		return b
	}
	if !b.reached {
		return a
	}
	out := rangeEnv{reached: true, vars: map[string]*interval.I{}}
	for k, av := range a.vars {
		bv, ok := b.vars[k]
		if !ok {
			continue
		}
		out.vars[k] = interval.Hull(av, bv)
	}
	return out
}

func (tf *truncFlow) Equal(a, b rangeEnv) bool {
	if a.reached != b.reached || len(a.vars) != len(b.vars) {
		return false
	}
	for k, av := range a.vars {
		bv, ok := b.vars[k]
		if !ok || !av.Eq(bv) {
			return false
		}
	}
	return true
}

func (tf *truncFlow) Transfer(b *cfg.Block, in rangeEnv) rangeEnv {
	if !in.reached {
		return in
	}
	out := in.clone()
	for _, a := range b.Atoms {
		out = tf.step(out, a)
	}
	return out
}

// step applies one atom to an environment (shared by Transfer and the
// checker's replay). Deferred defs were already folded into volatile.
func (tf *truncFlow) step(env rangeEnv, a cfg.Atom) rangeEnv {
	if !env.reached {
		return env
	}
	set := func(name string, r *interval.I) {
		if tf.volatile[name] {
			return
		}
		out := env.clone()
		if r == nil {
			delete(out.vars, name)
		} else {
			out.vars[name] = r
		}
		env = out
	}
	switch a.Op {
	case cfg.OpDef:
		if !a.Deferred {
			if s, ok := a.Expr.(*ast.Set); ok {
				set(a.Name, tf.narrowed(env, s.Value))
			}
		}
	case cfg.OpDecl:
		switch a.Decl.Kind {
		case cfg.DeclLet:
			set(a.Name, tf.narrowed(env, a.Decl.Binding.Init))
		case cfg.DeclLoop:
			// dotimes counts i = 0 .. count-1.
			if dt, ok := a.Decl.Node.(*ast.DoTimes); ok {
				if cr := tf.rangeOf(env, dt.Count); cr != nil && cr.Hi.Sign() > 0 {
					set(a.Name, interval.New(big.NewInt(0), new(big.Int).Sub(cr.Hi, big.NewInt(1))))
					break
				}
			}
			set(a.Name, nil)
		default:
			set(a.Name, nil)
		}
	}
	return env
}

// narrowed returns e's interval only when it is strictly tighter than the
// full type range (keeping the environment small).
func (tf *truncFlow) narrowed(env rangeEnv, e ast.Expr) *interval.I {
	r := tf.rangeOf(env, e)
	if r == nil {
		return nil
	}
	if full := typeRange(types.Prune(tf.info.TypeOf(e))); full != nil && full.Within(r) {
		return nil
	}
	return r
}

// Flow refines the fact along one branch edge using the block's condition:
// succ 0 is the true edge, succ 1 the false edge. Non-comparison conditions
// and multiway dispatch pass the fact through unchanged.
func (tf *truncFlow) Flow(from *cfg.Block, succIdx int, out rangeEnv) rangeEnv {
	if !out.reached || from.Cond == nil || len(from.Succs) != 2 {
		return out
	}
	return tf.refine(out, from.Cond, succIdx == 0)
}

// refine applies a branch condition's truth to the environment.
func (tf *truncFlow) refine(env rangeEnv, cond ast.Expr, truth bool) rangeEnv {
	call, ok := cond.(*ast.Call)
	if !ok {
		return env
	}
	fn, ok := call.Fn.(*ast.VarRef)
	if !ok {
		return env
	}
	switch fn.Name {
	case "not":
		if len(call.Args) == 1 {
			return tf.refine(env, call.Args[0], !truth)
		}
		return env
	case "and":
		// A true conjunction makes every conjunct true; a false one tells
		// us nothing about any individual conjunct.
		if truth {
			for _, a := range call.Args {
				env = tf.refine(env, a, true)
			}
		}
		return env
	case "or":
		if !truth {
			for _, a := range call.Args {
				env = tf.refine(env, a, false)
			}
		}
		return env
	}
	if len(call.Args) != 2 {
		return env
	}
	a, b := call.Args[0], call.Args[1]
	one := big.NewInt(1)
	switch fn.Name {
	case "<":
		if !truth {
			return tf.bound(tf.bound(env, a, nil, tf.loOf(env, b)), b, tf.hiOf(env, a), nil)
		}
		return tf.bound(tf.bound(env, a, interval.SubBound(tf.hiOf(env, b), one), nil), b, nil, interval.AddBound(tf.loOf(env, a), one))
	case "<=":
		if !truth {
			return tf.bound(tf.bound(env, a, nil, interval.AddBound(tf.loOf(env, b), one)), b, interval.SubBound(tf.hiOf(env, a), one), nil)
		}
		return tf.bound(tf.bound(env, a, tf.hiOf(env, b), nil), b, nil, tf.loOf(env, a))
	case ">":
		return tf.refine(env, &ast.Call{Fn: fn2("<", fn), Args: []ast.Expr{b, a}}, truth)
	case ">=":
		return tf.refine(env, &ast.Call{Fn: fn2("<=", fn), Args: []ast.Expr{b, a}}, truth)
	case "=":
		if truth {
			env = tf.bound(env, a, tf.hiOf(env, b), tf.loOf(env, b))
			return tf.bound(env, b, tf.hiOf(env, a), tf.loOf(env, a))
		}
	}
	return env
}

// fn2 makes a synthetic comparison head reusing the original's span.
func fn2(name string, like *ast.VarRef) *ast.VarRef {
	return &ast.VarRef{Name: name, SpanV: like.SpanV}
}

func (tf *truncFlow) loOf(env rangeEnv, e ast.Expr) *big.Int {
	if r := tf.rangeOf(env, e); r != nil {
		return r.Lo
	}
	return nil
}

func (tf *truncFlow) hiOf(env rangeEnv, e ast.Expr) *big.Int {
	if r := tf.rangeOf(env, e); r != nil {
		return r.Hi
	}
	return nil
}

// bound intersects a local's range with [newLo, newHi] (nil = no bound on
// that side). A contradictory interval makes the edge unreachable.
func (tf *truncFlow) bound(env rangeEnv, e ast.Expr, newHi, newLo *big.Int) rangeEnv {
	if !env.reached {
		return env
	}
	v, ok := e.(*ast.VarRef)
	if !ok {
		return env
	}
	name := tf.g.Rename[v]
	if name == "" || tf.volatile[name] {
		return env
	}
	cur := tf.rangeOf(env, e)
	if cur == nil {
		return env
	}
	next := interval.Intersect(cur, interval.New(newLo, newHi))
	if next.Empty() {
		return rangeEnv{} // condition can never hold: edge unreachable
	}
	if next.Lo == cur.Lo && next.Hi == cur.Hi {
		return env
	}
	out := env.clone()
	out.vars[name] = next
	return out
}

// rangeOf computes a conservative interval for e under env, or nil when e's
// type is not integer-like. Truncate ranges are always finite: the fallback
// is the full (finite) type range.
func (tf *truncFlow) rangeOf(env rangeEnv, e ast.Expr) *interval.I {
	t := types.Prune(tf.info.TypeOf(e))
	full := typeRange(t)
	switch e := e.(type) {
	case *ast.IntLit:
		return interval.Point(big.NewInt(e.Value))
	case *ast.CharLit:
		return interval.Point(big.NewInt(int64(e.Value)))
	case *ast.VarRef:
		if name := tf.g.Rename[e]; name != "" && env.reached {
			if r, ok := env.vars[name]; ok {
				return r
			}
		}
		return full
	case *ast.Cast:
		inner := tf.rangeOf(env, e.Expr)
		if inner != nil && full != nil && inner.Within(full) {
			return inner // value preserved by the cast
		}
		return full
	case *ast.Begin:
		if n := len(e.Body); n > 0 {
			if r := tf.rangeOf(env, e.Body[n-1]); r != nil {
				return r
			}
		}
		return full
	case *ast.Call:
		if r := tf.builtinRange(env, e); r != nil {
			return r
		}
		return full
	}
	return full
}

// builtinRange narrows the result of masking/remainder/shift builtins with
// literal operands.
func (tf *truncFlow) builtinRange(env rangeEnv, call *ast.Call) *interval.I {
	v, ok := call.Fn.(*ast.VarRef)
	if !ok || len(call.Args) != 2 {
		return nil
	}
	lit, ok := call.Args[1].(*ast.IntLit)
	if !ok {
		return nil
	}
	argT := types.Prune(tf.info.TypeOf(call.Args[0]))
	switch v.Name {
	case "bitand":
		if lit.Value >= 0 {
			return interval.Of(0, lit.Value)
		}
	case "mod":
		if lit.Value > 0 {
			hi := big.NewInt(lit.Value - 1)
			if argT.Kind == types.KInt && argT.Signed {
				if r := tf.rangeOf(env, call.Args[0]); r != nil && r.Lo.Sign() >= 0 {
					return interval.New(big.NewInt(0), hi) // non-negative dividend
				}
				return interval.New(new(big.Int).Neg(hi), hi)
			}
			return interval.New(big.NewInt(0), hi)
		}
	case "shr":
		if full := typeRange(argT); full != nil && lit.Value >= 0 && lit.Value < 64 &&
			argT.Kind == types.KInt && !argT.Signed {
			base := full
			if r := tf.rangeOf(env, call.Args[0]); r != nil && r.Lo.Sign() >= 0 {
				base = r
			}
			return interval.New(big.NewInt(0), new(big.Int).Rsh(base.Hi, uint(lit.Value)))
		}
	}
	return nil
}
