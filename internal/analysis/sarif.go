package analysis

import (
	"encoding/json"
	"io"
	"strings"

	"bitc/internal/source"
)

// lintDocURI is the repo-relative location of the lint-code reference; each
// rule's helpUri appends the code's lowercase anchor (the doc carries
// explicit `<a id="bitc-xxx001">` anchors, so the links are stable against
// heading rewording). Repo-relative URIs keep the log honest — there is no
// hosted doc site to point at — and review tools resolve them against the
// repository root like any artifactLocation.
const lintDocURI = "docs/lint-codes.md"

// SARIF 2.1.0 output, the minimal subset most code-review tools ingest: one
// run, a tool.driver with one reportingDescriptor per lint code that fired,
// and one result per finding with physical locations and relatedLocations.
// The schema subset is documented in README.md ("Machine-readable output").

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	HelpURI          string       `json:"helpUri,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID           string          `json:"ruleId"`
	Level            string          `json:"level"`
	Message          sarifMessage    `json:"message"`
	Locations        []sarifLocation `json:"locations"`
	RelatedLocations []sarifLocation `json:"relatedLocations,omitempty"`
	Suppressions     []sarifSupp     `json:"suppressions,omitempty"`
}

type sarifSupp struct {
	Kind string `json:"kind"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

// WriteSARIF emits the report as a SARIF 2.1.0 log. Suppressed findings are
// included with an inSource suppression object (SARIF's native way to say
// "found but muted"), so viewers show them greyed out rather than losing
// them.
func (r *Report) WriteSARIF(w io.Writer) error {
	name := ""
	if r.File != nil {
		name = r.File.Name
	}

	// One rule per code that actually fired, in first-appearance order of
	// the (already sorted) findings — deterministic.
	var rules []sarifRule
	ruleSeen := map[string]bool{}
	addRule := func(f Finding) {
		if ruleSeen[f.Code] {
			return
		}
		ruleSeen[f.Code] = true
		doc := f.Code
		if a := ByName(f.Analyzer); a != nil {
			doc = a.Doc
		}
		rules = append(rules, sarifRule{
			ID:               f.Code,
			ShortDescription: sarifMessage{Text: doc},
			HelpURI:          lintDocURI + "#" + strings.ToLower(f.Code),
		})
	}

	results := []sarifResult{}
	addResult := func(f Finding, muted bool) {
		res := sarifResult{
			RuleID:    f.Code,
			Level:     sarifLevel(f.Severity),
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{r.sarifLoc(f.Span, name, "")},
		}
		for _, rel := range f.Related {
			file := name
			if rel.File != "" {
				file = rel.File
			}
			res.RelatedLocations = append(res.RelatedLocations, r.sarifLoc(rel.Span, file, rel.Message))
		}
		if muted {
			res.Suppressions = []sarifSupp{{Kind: "inSource"}}
		}
		results = append(results, res)
	}
	for _, f := range r.Findings {
		addRule(f)
		addResult(f, false)
	}
	for _, f := range r.Suppressed {
		addRule(f)
		addResult(f, true)
	}
	if rules == nil {
		rules = []sarifRule{}
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "bitc", InformationURI: lintDocURI, Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func (r *Report) sarifLoc(span source.Span, file, msg string) sarifLocation {
	loc := sarifLocation{PhysicalLocation: sarifPhysical{ArtifactLocation: sarifArtifact{URI: file}}}
	// Regions can only be resolved against the report's own file; a
	// foreign-file related span keeps its artifact URI without a region.
	if r.File != nil && file == r.File.Name && span.IsValid() {
		reg := &sarifRegion{}
		reg.StartLine, reg.StartColumn = r.File.Position(span.Start)
		reg.EndLine, reg.EndColumn = r.File.Position(span.End)
		loc.PhysicalLocation.Region = reg
	}
	if msg != "" {
		loc.Message = &sarifMessage{Text: msg}
	}
	return loc
}

func sarifLevel(sev source.Severity) string {
	switch sev {
	case source.Error:
		return "error"
	case source.Warning:
		return "warning"
	default:
		return "note"
	}
}
