package analysis

import (
	"bitc/internal/ast"
	"bitc/internal/cfg"
	"bitc/internal/dataflow"
	"bitc/internal/dataflow/interval"
	"bitc/internal/source"
	"bitc/internal/types"
)

// The ffi analyzer guards the simulated C ABI (internal/ffi). Three things
// go wrong at that boundary:
//
//   - BITC-FFI001: an external is declared with a parameter or result type
//     that cannot cross the C ABI by value (structs, vectors, strings,
//     channels, functions) — those need an explicit marshalling codec;
//   - BITC-FFI002: an external is called inside an (atomic ...) transaction;
//     foreign side effects cannot be rolled back when the STM retries;
//   - BITC-FFI003: a region-allocated value is passed to an external, which
//     may retain the pointer past the region's dynamic extent (unpinned).
//   - BITC-PROV001: capability narrowing — a cast at an external call site
//     squeezes a value whose statically known bounds exceed the declared
//     parameter window, so the foreign side receives punned bits with no
//     record of the value's provenance. References cannot cross the ABI at
//     all (FFI001), so the scalar windows are the boundary's capabilities,
//     and a lossy cast into one is this language's int↔pointer pun. The
//     check runs the bounds engine's relational ranges, so a guarded cast
//     ((when (< x 256) ...)) does not fire.

// FFI lint codes.
const (
	CodeFFIType   = "BITC-FFI001"
	CodeFFIAtomic = "BITC-FFI002"
	CodeFFIRegion = "BITC-FFI003"
	CodeFFIProv   = "BITC-PROV001"
)

var ffiAnalyzer = register(&Analyzer{
	Name:  "ffi",
	Doc:   "C-ABI boundary checks: unmarshallable types, externals under STM, unpinned region values, capability-narrowing casts",
	Code:  CodeFFIType,
	Codes: []string{CodeFFIType, CodeFFIAtomic, CodeFFIRegion, CodeFFIProv},
	Run:   runFFI,
})

// cScalar reports whether t can cross the simulated C ABI by value.
func cScalar(t *types.Type) bool {
	switch types.Prune(t).Kind {
	case types.KUnit, types.KBool, types.KChar, types.KInt, types.KFloat:
		return true
	}
	return false
}

func runFFI(p *Pass) {
	externals := map[string]bool{}
	for _, ext := range p.Info.Externals {
		externals[ext.Name] = true
		sch, ok := p.Info.Funcs[ext.Name]
		if !ok {
			continue
		}
		ft := types.Prune(sch.Type)
		if ft.Kind != types.KFn {
			continue
		}
		for i, pt := range ft.Params {
			if !cScalar(pt) {
				p.Reportf(CodeFFIType, source.Error, ext.Span(),
					"external %s: parameter %d has type %s, which cannot cross the C ABI by value (marshal it through a codec)",
					ext.Name, i+1, types.Prune(pt))
			}
		}
		if !cScalar(ft.Result) {
			p.Reportf(CodeFFIType, source.Error, ext.Span(),
				"external %s: result type %s cannot cross the C ABI by value (marshal it through a codec)",
				ext.Name, types.Prune(ft.Result))
		}
	}
	if len(externals) == 0 {
		return
	}

	w := &ffiWalker{pass: p, externals: externals,
		funcs: map[string]*ast.DefineFunc{}, memo: map[string]bool{}}
	for _, d := range p.Prog.Defs {
		if fn, ok := d.(*ast.DefineFunc); ok {
			w.funcs[fn.Name] = fn
		}
	}
	for _, d := range p.Prog.Defs {
		if fn, ok := d.(*ast.DefineFunc); ok {
			w.walkFunc(fn, false, 0)
		}
	}
	runFFIProv(p)
}

// runFFIProv implements BITC-PROV001. For every function that calls an
// external directly, the bounds engine's relational ranges are solved over
// the function's CFG and each cast argument at an external call site is
// compared against the declared parameter window: if the pre-cast value's
// statically known range does not fit the window, the cast narrows a
// capability at the boundary. Points-to facts are not needed — windows are
// scalar — so the engine runs object-graph-free.
func runFFIProv(p *Pass) {
	windows := map[string][]*interval.I{}
	for _, ext := range p.Info.Externals {
		sch, ok := p.Info.Funcs[ext.Name]
		if !ok {
			continue
		}
		ft := types.Prune(sch.Type)
		if ft.Kind != types.KFn {
			continue
		}
		ws := make([]*interval.I, len(ft.Params))
		for i, pt := range ft.Params {
			ws[i] = typeRange(pt)
		}
		windows[ext.Name] = ws
	}
	if len(windows) == 0 {
		return
	}
	for _, d := range p.Prog.Defs {
		fn, ok := d.(*ast.DefineFunc)
		if !ok || !callsAny(fn, windows) {
			continue
		}
		g := cfg.Build(fn)
		eng := newBoundsEngine(p.Info, g, nil, fn.Name)
		res := dataflow.Solve[boundsEnv](g, eng)
		for _, b := range g.Blocks {
			env := res.In[b.Index]
			for _, a := range b.Atoms {
				if a.Op == cfg.OpCall {
					if ws := windows[a.Name]; ws != nil {
						checkEnv := env
						if a.Deferred || !env.reached {
							checkEnv = boundsEnv{reached: true}
						}
						if call, ok := a.Expr.(*ast.Call); ok {
							checkProvCall(p, eng, checkEnv, a.Name, call, ws)
						}
					}
				}
				env = eng.step(env, a)
			}
		}
	}
}

func checkProvCall(p *Pass, eng *boundsEngine, env boundsEnv, ext string, call *ast.Call, ws []*interval.I) {
	for i, arg := range call.Args {
		if i >= len(ws) || ws[i] == nil {
			continue
		}
		cast, ok := arg.(*ast.Cast)
		if !ok {
			continue
		}
		f := eng.evalFact(env, cast.Expr)
		if f == nil || f.rng.Within(ws[i]) {
			continue
		}
		p.Reportf(CodeFFIProv, source.Warning, arg.Span(),
			"external %s: argument %d narrows a value with statically known range %s into the declared window %s; the foreign side receives punned bits with no provenance",
			ext, i+1, f.rng, ws[i])
	}
}

// callsAny reports whether fn's body contains a direct call to any of the
// named externals — the cheap pre-filter before building a CFG.
func callsAny(fn *ast.DefineFunc, names map[string][]*interval.I) bool {
	found := false
	for _, e := range fn.Body {
		ast.Walk(e, func(sub ast.Expr) bool {
			if found {
				return false
			}
			if c, ok := sub.(*ast.Call); ok {
				if v, ok := c.Fn.(*ast.VarRef); ok && names[v.Name] != nil {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

type ffiWalker struct {
	pass      *Pass
	externals map[string]bool
	funcs     map[string]*ast.DefineFunc
	memo      map[string]bool
}

func (w *ffiWalker) walkFunc(fn *ast.DefineFunc, inAtomic bool, depth int) {
	if depth > 8 {
		return
	}
	key := fn.Name
	if inAtomic {
		key += "|atomic"
	}
	if w.memo[key] {
		return
	}
	w.memo[key] = true
	// Region taint is tracked per function: names let-bound to (alloc-in r e)
	// inside an open (with-region r ...).
	for _, e := range fn.Body {
		w.walk(e, fn, inAtomic, nil, depth)
	}
}

// regionEnv tracks open regions and names bound to region allocations.
type regionEnv struct {
	parent  *regionEnv
	region  string
	tainted map[string]bool
}

// regionOf resolves the region whose allocation flows into e, shallowly.
func regionOf(e ast.Expr, env *regionEnv) string {
	switch e := e.(type) {
	case *ast.AllocIn:
		return e.Region
	case *ast.VarRef:
		for s := env; s != nil; s = s.parent {
			if s.tainted[e.Name] {
				return s.region
			}
		}
	case *ast.Begin:
		if n := len(e.Body); n > 0 {
			return regionOf(e.Body[n-1], env)
		}
	}
	return ""
}

func (w *ffiWalker) walk(e ast.Expr, fn *ast.DefineFunc, inAtomic bool, env *regionEnv, depth int) {
	switch e := e.(type) {
	case *ast.Atomic:
		for _, b := range e.Body {
			w.walk(b, fn, true, env, depth)
		}
	case *ast.WithRegion:
		inner := &regionEnv{parent: env, region: e.Name, tainted: map[string]bool{}}
		for _, b := range e.Body {
			w.walk(b, fn, inAtomic, inner, depth)
		}
	case *ast.Let:
		for _, b := range e.Bindings {
			w.walk(b.Init, fn, inAtomic, env, depth)
			if r := regionOf(b.Init, env); r != "" {
				for s := env; s != nil; s = s.parent {
					if s.region == r {
						s.tainted[b.Name] = true
						break
					}
				}
			}
		}
		for _, b := range e.Body {
			w.walk(b, fn, inAtomic, env, depth)
		}
	case *ast.Call:
		if v, ok := e.Fn.(*ast.VarRef); ok {
			if w.externals[v.Name] {
				if inAtomic {
					w.pass.Reportf(CodeFFIAtomic, source.Warning, e.Span(),
						"external %s called inside an atomic transaction: foreign side effects cannot be rolled back", v.Name)
				}
				var regions []string
				for _, arg := range e.Args {
					if r := regionOf(arg, env); r != "" && !contains(regions, r) {
						regions = append(regions, r)
					}
				}
				for _, r := range regions {
					w.pass.Reportf(CodeFFIRegion, source.Warning, e.Span(),
						"value allocated in region %s passed to external %s without pinning: the C side may retain it past the region's extent", r, v.Name)
				}
			} else if callee := w.funcs[v.Name]; callee != nil {
				w.walkFunc(callee, inAtomic, depth+1)
			}
		}
		for _, arg := range e.Args {
			w.walk(arg, fn, inAtomic, env, depth)
		}
	case *ast.Spawn:
		// A spawned thread starts outside any transaction of the parent.
		w.walk(e.Expr, fn, false, env, depth)
	default:
		ast.Walk(e, func(sub ast.Expr) bool {
			if sub == e {
				return true
			}
			w.walk(sub, fn, inAtomic, env, depth)
			return false
		})
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
