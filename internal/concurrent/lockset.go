// Package concurrent implements the static side of bitc's shared-state story
// (the paper's challenge 4): a lockset analysis in the Eraser tradition that
// finds fields of shared (global) objects accessed from multiple threads
// without a consistent lock — plus a report of where locks *are* held, which
// the E8 experiment uses to contrast locks, STM, and unsynchronised code.
package concurrent

import (
	"fmt"
	"sort"
	"strings"

	"bitc/internal/ast"
	"bitc/internal/source"
	"bitc/internal/types"
)

// Access is one read or write of a shared location.
type Access struct {
	Global  string // global variable holding the object
	Field   string
	Write   bool
	Span    source.Span
	Func    string
	Lockset []string // sorted lock names (and "atomic") held at the access
	Spawned bool     // reachable from a spawn site (i.e. a non-main thread)
}

// Race is a pair of conflicting accesses with disjoint locksets.
type Race struct {
	Location string // global.field
	A, B     Access
}

func (r Race) String() string {
	return fmt.Sprintf("potential race on %s: %s in %s holds {%s}; %s in %s holds {%s}",
		r.Location,
		rw(r.A.Write), r.A.Func, strings.Join(r.A.Lockset, ","),
		rw(r.B.Write), r.B.Func, strings.Join(r.B.Lockset, ","))
}

func rw(w bool) string {
	if w {
		return "write"
	}
	return "read"
}

// Report is the analysis result.
type Report struct {
	Accesses []Access
	Races    []Race
}

// Analyze runs the lockset analysis over a checked program.
func Analyze(prog *ast.Program, info *types.Info) *Report {
	a := &analyzer{
		info:  info,
		funcs: map[string]*ast.DefineFunc{},
		memo:  map[string]bool{},
	}
	for _, d := range prog.Defs {
		if fn, ok := d.(*ast.DefineFunc); ok {
			a.funcs[fn.Name] = fn
		}
	}
	// Globals that hold mutable heap objects are the shared state.
	for name, t := range info.Globals {
		if types.Prune(t).Kind == types.KStruct {
			a.sharedGlobals = append(a.sharedGlobals, name)
		}
	}
	sort.Strings(a.sharedGlobals)

	// Entry points are functions nothing else calls (plus main): accesses are
	// only meaningful along real execution paths, otherwise a callee that is
	// always invoked under a lock would be flagged spuriously.
	called := map[string]bool{}
	for _, d := range prog.Defs {
		if fn, ok := d.(*ast.DefineFunc); ok {
			for _, body := range fn.Body {
				ast.Walk(body, func(e ast.Expr) bool {
					if call, ok := e.(*ast.Call); ok {
						if v, ok := call.Fn.(*ast.VarRef); ok && a.funcs[v.Name] != nil && v.Name != fn.Name {
							called[v.Name] = true
						}
					}
					return true
				})
			}
		}
	}
	for _, d := range prog.Defs {
		if fn, ok := d.(*ast.DefineFunc); ok {
			if !called[fn.Name] || fn.Name == "main" {
				a.walkFunc(fn, nil, false, 0)
			}
		}
	}
	rep := &Report{Accesses: a.accesses}
	rep.Races = FindRaces(a.accesses)
	return rep
}

type analyzer struct {
	info          *types.Info
	funcs         map[string]*ast.DefineFunc
	sharedGlobals []string
	accesses      []Access
	memo          map[string]bool
}

func lockKey(locks []string) string { return strings.Join(locks, "\x00") }

// walkFunc analyses fn's body under the given held lockset. Memoised per
// (function, lockset, spawned) context; depth-bounded for recursion.
func (a *analyzer) walkFunc(fn *ast.DefineFunc, locks []string, spawned bool, depth int) {
	if depth > 8 {
		return
	}
	key := fmt.Sprintf("%s|%s|%v", fn.Name, lockKey(locks), spawned)
	if a.memo[key] {
		return
	}
	a.memo[key] = true
	for _, e := range fn.Body {
		a.walk(e, fn, locks, spawned, depth)
	}
}

// globalTarget resolves the object expression of a field access to a shared
// global name, or "".
func (a *analyzer) globalTarget(e ast.Expr) string {
	v, ok := e.(*ast.VarRef)
	if !ok {
		return ""
	}
	if sym := a.info.Uses[v]; sym != nil && sym.Kind == types.SymGlobal {
		return v.Name
	}
	return ""
}

func (a *analyzer) record(global, field string, write bool, span source.Span, fn string, locks []string, spawned bool) {
	ls := append([]string{}, locks...)
	sort.Strings(ls)
	a.accesses = append(a.accesses, Access{
		Global: global, Field: field, Write: write, Span: span,
		Func: fn, Lockset: ls, Spawned: spawned,
	})
}

func (a *analyzer) walk(e ast.Expr, fn *ast.DefineFunc, locks []string, spawned bool, depth int) {
	switch e := e.(type) {
	case *ast.WithLock:
		inner := append(append([]string{}, locks...), e.Lock)
		for _, b := range e.Body {
			a.walk(b, fn, inner, spawned, depth)
		}
	case *ast.Atomic:
		// STM serialises with every other atomic block: model as a single
		// global lock named "atomic".
		inner := append(append([]string{}, locks...), "atomic")
		for _, b := range e.Body {
			a.walk(b, fn, inner, spawned, depth)
		}
	case *ast.Spawn:
		a.walkSpawn(e.Expr, fn, depth)
	case *ast.FieldRef:
		if g := a.globalTarget(e.Expr); g != "" {
			a.record(g, e.Name, false, e.Span(), fn.Name, locks, spawned)
		}
		a.walk(e.Expr, fn, locks, spawned, depth)
	case *ast.FieldSet:
		if g := a.globalTarget(e.Expr); g != "" {
			a.record(g, e.Name, true, e.Span(), fn.Name, locks, spawned)
		}
		a.walk(e.Expr, fn, locks, spawned, depth)
		a.walk(e.Value, fn, locks, spawned, depth)
	case *ast.Call:
		if v, ok := e.Fn.(*ast.VarRef); ok {
			if callee, isFn := a.funcs[v.Name]; isFn {
				a.walkFunc(callee, locks, spawned, depth+1)
			}
		}
		for _, arg := range e.Args {
			a.walk(arg, fn, locks, spawned, depth)
		}
	default:
		ast.Walk(e, func(sub ast.Expr) bool {
			if sub == e {
				return true
			}
			a.walk(sub, fn, locks, spawned, depth)
			return false
		})
	}
}

// walkSpawn analyses a spawned expression as child-thread code.
func (a *analyzer) walkSpawn(e ast.Expr, fn *ast.DefineFunc, depth int) {
	if call, ok := e.(*ast.Call); ok {
		if v, ok := call.Fn.(*ast.VarRef); ok {
			if callee, isFn := a.funcs[v.Name]; isFn {
				a.walkFunc(callee, nil, true, depth+1)
			}
		}
	}
	// Direct accesses in the spawned expression itself.
	synthetic := &ast.DefineFunc{Name: fn.Name + "$spawn"}
	a.walk(e, synthetic, nil, true, depth)
}

// FindRaces pairs conflicting accesses: same location, at least one write,
// at least one from a spawned thread (or both from different spawned code),
// and disjoint locksets. Exported so callers that collect accesses through
// another path (the summary-based interprocedural analysis) share the same
// race-pairing policy.
func FindRaces(accesses []Access) []Race {
	byLoc := map[string][]Access{}
	for _, ac := range accesses {
		byLoc[ac.Global+"."+ac.Field] = append(byLoc[ac.Global+"."+ac.Field], ac)
	}
	var races []Race
	seen := map[string]bool{}
	var locs []string
	for loc := range byLoc {
		locs = append(locs, loc)
	}
	sort.Strings(locs)
	for _, loc := range locs {
		acs := byLoc[loc]
		for i := 0; i < len(acs); i++ {
			for j := i; j < len(acs); j++ {
				x, y := acs[i], acs[j]
				if !x.Write && !y.Write {
					continue
				}
				// Concurrency requires at least one access on a spawned
				// thread, and if both are the same access it must be
				// self-parallel (spawned code can run in two instances).
				if !x.Spawned && !y.Spawned {
					continue
				}
				if disjoint(x.Lockset, y.Lockset) {
					key := fmt.Sprintf("%s|%s|%s", loc, x.Func, y.Func)
					if !seen[key] {
						seen[key] = true
						races = append(races, Race{Location: loc, A: x, B: y})
					}
				}
			}
		}
	}
	return races
}

func disjoint(a, b []string) bool {
	set := map[string]bool{}
	for _, x := range a {
		set[x] = true
	}
	for _, y := range b {
		if set[y] {
			return false
		}
	}
	return true
}
