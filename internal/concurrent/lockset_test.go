package concurrent_test

import (
	"strings"
	"testing"

	"bitc/internal/concurrent"
	"bitc/internal/parser"
	"bitc/internal/types"
)

func analyze(t *testing.T, src string) *concurrent.Report {
	t.Helper()
	prog, diags := parser.Parse("t.bitc", src)
	if diags.HasErrors() {
		t.Fatalf("parse: %v", diags)
	}
	info, cdiags := types.Check(prog)
	if cdiags.HasErrors() {
		t.Fatalf("check: %v", cdiags)
	}
	return concurrent.Analyze(prog, info)
}

const counterHeader = `
(defstruct cell (v int64))
(define counter cell (make cell :v 0))
`

func TestUnsynchronisedRaceDetected(t *testing.T) {
	rep := analyze(t, counterHeader+`
	  (define (bump) unit
	    (set-field! counter v (+ (field counter v) 1)))
	  (define (main) unit
	    (let ((t1 (spawn (bump))) (t2 (spawn (bump))))
	      (join t1) (join t2)))`)
	if len(rep.Races) == 0 {
		t.Fatalf("race not detected; accesses: %d", len(rep.Accesses))
	}
	r := rep.Races[0]
	if r.Location != "counter.v" {
		t.Errorf("race location = %s", r.Location)
	}
	if !strings.Contains(r.String(), "counter.v") {
		t.Errorf("race string = %s", r.String())
	}
}

func TestLockedAccessesNoRace(t *testing.T) {
	rep := analyze(t, counterHeader+`
	  (define (bump) unit
	    (with-lock m
	      (set-field! counter v (+ (field counter v) 1))))
	  (define (main) unit
	    (let ((t1 (spawn (bump))) (t2 (spawn (bump))))
	      (join t1) (join t2)))`)
	if len(rep.Races) != 0 {
		t.Fatalf("false race: %v", rep.Races[0])
	}
}

func TestAtomicCountsAsSerialised(t *testing.T) {
	rep := analyze(t, counterHeader+`
	  (define (bump) unit
	    (atomic (set-field! counter v (+ (field counter v) 1))))
	  (define (main) unit
	    (let ((t1 (spawn (bump))) (t2 (spawn (bump))))
	      (join t1) (join t2)))`)
	if len(rep.Races) != 0 {
		t.Fatalf("false race under atomic: %v", rep.Races[0])
	}
}

func TestMixedLockAndNoLockRaces(t *testing.T) {
	rep := analyze(t, counterHeader+`
	  (define (locked) unit
	    (with-lock m (set-field! counter v 1)))
	  (define (unlocked) unit
	    (set-field! counter v 2))
	  (define (main) unit
	    (let ((t1 (spawn (locked))) (t2 (spawn (unlocked))))
	      (join t1) (join t2)))`)
	if len(rep.Races) == 0 {
		t.Fatal("lock/no-lock conflict missed")
	}
}

func TestDifferentLocksStillRace(t *testing.T) {
	rep := analyze(t, counterHeader+`
	  (define (a) unit (with-lock m1 (set-field! counter v 1)))
	  (define (b) unit (with-lock m2 (set-field! counter v 2)))
	  (define (main) unit
	    (let ((t1 (spawn (a))) (t2 (spawn (b))))
	      (join t1) (join t2)))`)
	if len(rep.Races) == 0 {
		t.Fatal("disjoint-lock race missed")
	}
}

func TestReadOnlySharingIsFine(t *testing.T) {
	rep := analyze(t, counterHeader+`
	  (define (reader) int64 (field counter v))
	  (define (main) unit
	    (let ((t1 (spawn (reader))) (t2 (spawn (reader))))
	      (join t1) (join t2)))`)
	if len(rep.Races) != 0 {
		t.Fatalf("read/read flagged: %v", rep.Races[0])
	}
}

func TestMainOnlyAccessNoRace(t *testing.T) {
	rep := analyze(t, counterHeader+`
	  (define (main) unit
	    (set-field! counter v 1)
	    (set-field! counter v 2))`)
	if len(rep.Races) != 0 {
		t.Fatalf("sequential main flagged: %v", rep.Races[0])
	}
}

func TestInterproceduralLockHeld(t *testing.T) {
	// The lock is taken in the caller, the access happens in the callee.
	rep := analyze(t, counterHeader+`
	  (define (doit) unit
	    (set-field! counter v (+ (field counter v) 1)))
	  (define (bump) unit
	    (with-lock m (doit)))
	  (define (main) unit
	    (let ((t1 (spawn (bump))) (t2 (spawn (bump))))
	      (join t1) (join t2)))`)
	if len(rep.Races) != 0 {
		t.Fatalf("interprocedural lockset lost: %v", rep.Races[0])
	}
}

func TestMainVsSpawnedRace(t *testing.T) {
	rep := analyze(t, counterHeader+`
	  (define (child) unit (set-field! counter v 1))
	  (define (main) int64
	    (let ((t1 (spawn (child))))
	      (field counter v)))`)
	if len(rep.Races) == 0 {
		t.Fatal("main-vs-child race missed")
	}
}

func TestAccessesRecordLocksets(t *testing.T) {
	rep := analyze(t, counterHeader+`
	  (define (f) unit
	    (with-lock a (with-lock b (set-field! counter v 1))))`)
	found := false
	for _, ac := range rep.Accesses {
		if ac.Write && len(ac.Lockset) == 2 && ac.Lockset[0] == "a" && ac.Lockset[1] == "b" {
			found = true
		}
	}
	if !found {
		t.Fatalf("nested lockset not recorded: %+v", rep.Accesses)
	}
}

func TestRecursionTerminates(t *testing.T) {
	rep := analyze(t, counterHeader+`
	  (define (loop (n int64)) unit
	    (if (> n 0) (loop (- n 1)) (set-field! counter v 1)))
	  (define (main) unit
	    (let ((t1 (spawn (loop 5))) (t2 (spawn (loop 5))))
	      (join t1) (join t2)))`)
	if len(rep.Races) == 0 {
		t.Fatal("race through recursion missed")
	}
}

// --- Edge cases the analysis-driver adapter must preserve ---

// Per-field granularity: a field that is only ever read may be shared freely
// even while a sibling field of the same global is written under a lock.
func TestReadOnlyFieldNextToLockedWrites(t *testing.T) {
	rep := analyze(t, `
	  (defstruct pair (ro int64) (rw int64))
	  (define shared pair (make pair :ro 7 :rw 0))
	  (define (reader) int64 (field shared ro))
	  (define (writer) unit (with-lock m (set-field! shared rw 1)))
	  (define (main) unit
	    (let ((t1 (spawn (reader))) (t2 (spawn (reader))) (t3 (spawn (writer))))
	      (join t1) (join t2) (join t3)))`)
	if len(rep.Races) != 0 {
		t.Fatalf("read-only field flagged: %v", rep.Races[0])
	}
}

// Atomic serialises only against other atomics: an atomic writer and a
// lock-holding writer have disjoint locksets and still race.
func TestAtomicVsLockStillRaces(t *testing.T) {
	rep := analyze(t, counterHeader+`
	  (define (a) unit (atomic (set-field! counter v 1)))
	  (define (b) unit (with-lock m (set-field! counter v 2)))
	  (define (main) unit
	    (let ((t1 (spawn (a))) (t2 (spawn (b))))
	      (join t1) (join t2)))`)
	if len(rep.Races) == 0 {
		t.Fatal("atomic-vs-lock conflict missed")
	}
}

// Mixed atomic writers do not race with each other even without locks.
func TestAtomicVsAtomicNoRace(t *testing.T) {
	rep := analyze(t, counterHeader+`
	  (define (a) unit (atomic (set-field! counter v 1)))
	  (define (b) unit (atomic (set-field! counter v 2)))
	  (define (main) unit
	    (let ((t1 (spawn (a))) (t2 (spawn (b))))
	      (join t1) (join t2)))`)
	if len(rep.Races) != 0 {
		t.Fatalf("two atomics flagged: %v", rep.Races[0])
	}
}

// Accesses in code never reachable from a spawn site cannot race: a helper
// called only from main (single-threaded) and an uncalled function both
// write unsynchronised, yet no pair is concurrent.
func TestNeverSpawnedAccessesNoRace(t *testing.T) {
	rep := analyze(t, counterHeader+`
	  (define (helper) unit (set-field! counter v 1))
	  (define (deadcode) unit (set-field! counter v 2))
	  (define (main) unit
	    (helper)
	    (set-field! counter v 3))`)
	if len(rep.Races) != 0 {
		t.Fatalf("non-concurrent accesses flagged: %v", rep.Races[0])
	}
	if len(rep.Accesses) == 0 {
		t.Fatal("accesses should still be recorded for reporting")
	}
}
