// Package layout is bitc's data-representation engine: it computes concrete
// machine-level layouts (sizes, alignments, offsets, bitfield packing) for
// struct and union types under three representation modes, and can encode and
// decode instances to raw bytes.
//
// This is the substrate for the paper's challenge 3 ("control over data
// representation") and for fallacies 2–3: the same declared type has a very
// different footprint under programmer-controlled packed layout, natural
// C-style layout, and an ML-style uniform boxed representation — and no
// optimiser is allowed to turn one into another once representation has been
// abstracted away.
package layout

import (
	"fmt"

	"bitc/internal/types"
)

// Mode selects the representation strategy.
type Mode int

// Representation modes.
const (
	// Natural is C-like layout: fields at naturally aligned offsets, with
	// padding; adjacent bitfields share storage units.
	Natural Mode = iota
	// Packed eliminates padding: fields are byte-aligned back to back and
	// bitfields are bit-contiguous.
	Packed
	// Boxed is the uniform representation of classic ML/Haskell
	// implementations: every field is a word-sized pointer to a heap box.
	Boxed
)

func (m Mode) String() string {
	switch m {
	case Natural:
		return "natural"
	case Packed:
		return "packed"
	case Boxed:
		return "boxed"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Target describes the simulated machine.
type Target struct {
	PointerSize int // bytes; 8 on the default target
	BoxHeader   int // per-box header bytes in Boxed mode
	CacheLine   int // bytes per cache line, for the access cost model
	MaxAlign    int // maximum useful alignment
}

// DefaultTarget is a 64-bit little-endian machine with 64-byte cache lines.
var DefaultTarget = Target{PointerSize: 8, BoxHeader: 8, CacheLine: 64, MaxAlign: 16}

// Field is one laid-out field.
type Field struct {
	Name     string
	Type     *types.Type
	ByteOff  int // byte offset of the storage unit
	BitOff   int // bit offset within the storage unit (0 for plain fields)
	BitWidth int // bit width; 0 means the whole unit
	Size     int // storage unit size in bytes
}

// IsBitfield reports whether the field occupies a sub-unit bit range.
func (f *Field) IsBitfield() bool { return f.BitWidth != 0 }

// StructLayout is a computed struct layout.
type StructLayout struct {
	Name   string
	Mode   Mode
	Size   int // total size in bytes, including padding
	Align  int
	Fields []Field

	target Target
}

// FieldByName returns the laid-out field, or nil.
func (l *StructLayout) FieldByName(name string) *Field {
	for i := range l.Fields {
		if l.Fields[i].Name == name {
			return &l.Fields[i]
		}
	}
	return nil
}

// PaddingBytes returns how many bytes of the layout are padding.
func (l *StructLayout) PaddingBytes() int {
	used := 0
	seen := map[int]int{} // storage unit offset -> size (bitfields share)
	for _, f := range l.Fields {
		if f.IsBitfield() {
			if s, ok := seen[f.ByteOff]; !ok || f.Size > s {
				seen[f.ByteOff] = f.Size
			}
			continue
		}
		used += f.Size
	}
	for _, s := range seen {
		used += s
	}
	if used > l.Size {
		return 0
	}
	return l.Size - used
}

// BoxedFootprint returns the total heap footprint of one instance in Boxed
// mode: the field-pointer record plus one box per field.
func (l *StructLayout) BoxedFootprint() int {
	if l.Mode != Boxed {
		return l.Size
	}
	t := l.target
	return l.Size + len(l.Fields)*(t.BoxHeader+t.PointerSize)
}

// CacheLines returns how many distinct cache lines an instance spans.
func (l *StructLayout) CacheLines() int {
	if l.Size == 0 {
		return 0
	}
	return (l.Size + l.target.CacheLine - 1) / l.target.CacheLine
}

// SizeOf returns the in-slot size of a value of type t under mode: the bytes
// a struct field or array element of that type occupies.
func SizeOf(t *types.Type, mode Mode) int {
	return DefaultTarget.SizeOf(t, mode)
}

// SizeOf is the Target-aware version of the package-level SizeOf.
func (tg Target) SizeOf(t *types.Type, mode Mode) int {
	t = types.Prune(t)
	if mode == Boxed {
		return tg.PointerSize // uniform representation: everything is a pointer
	}
	switch t.Kind {
	case types.KUnit:
		return 0
	case types.KBool:
		return 1
	case types.KChar:
		return 4
	case types.KInt:
		return t.Bits / 8
	case types.KFloat:
		return 8
	case types.KString, types.KVector, types.KChan, types.KFn:
		return tg.PointerSize // heap-allocated, held by reference
	case types.KStruct:
		if t.SDecl.Boxed {
			return tg.PointerSize
		}
		l, err := tg.Of(t.SDecl, mode)
		if err != nil {
			return tg.PointerSize
		}
		return l.Size
	case types.KUnion:
		// Union values are held by reference (they may be recursive, and the
		// VM represents them as tagged heap cells); a union-typed slot is a
		// pointer. OfUnion describes the heap cell itself.
		return tg.PointerSize
	case types.KArray:
		return t.Len * tg.SizeOf(t.Elem, mode)
	default:
		return tg.PointerSize
	}
}

// AlignOf returns the natural alignment of t under mode.
func (tg Target) AlignOf(t *types.Type, mode Mode) int {
	if mode == Packed {
		return 1
	}
	if mode == Boxed {
		return tg.PointerSize
	}
	t = types.Prune(t)
	switch t.Kind {
	case types.KUnit:
		return 1
	case types.KBool:
		return 1
	case types.KChar:
		return 4
	case types.KInt:
		return t.Bits / 8
	case types.KFloat:
		return 8
	case types.KString, types.KVector, types.KChan, types.KFn:
		return tg.PointerSize
	case types.KStruct:
		if t.SDecl.Boxed {
			return tg.PointerSize
		}
		l, err := tg.Of(t.SDecl, mode)
		if err != nil {
			return tg.PointerSize
		}
		return l.Align
	case types.KUnion:
		return tg.PointerSize // by-reference, see SizeOf
	case types.KArray:
		return tg.AlignOf(t.Elem, mode)
	default:
		return tg.PointerSize
	}
}

func alignUp(n, a int) int {
	if a <= 1 {
		return n
	}
	return (n + a - 1) / a * a
}

// Of computes the layout of si under mode on the default target.
func Of(si *types.StructInfo, mode Mode) (*StructLayout, error) {
	return DefaultTarget.Of(si, mode)
}

// Of computes the layout of si under mode.
func (tg Target) Of(si *types.StructInfo, mode Mode) (*StructLayout, error) {
	l := &StructLayout{Name: si.Name, Mode: mode, Align: 1, target: tg}
	if mode == Boxed {
		// Uniform representation: a record of word-sized pointers.
		off := 0
		for _, f := range si.Fields {
			l.Fields = append(l.Fields, Field{
				Name: f.Name, Type: f.Type, ByteOff: off, Size: tg.PointerSize,
			})
			off += tg.PointerSize
		}
		l.Size = off
		l.Align = tg.PointerSize
		return l, nil
	}

	off := 0      // current byte offset
	bitOff := -1  // current bit offset within an open bitfield unit; -1 = closed
	unitOff := 0  // byte offset of the open bitfield unit
	unitSize := 0 // size of the open bitfield unit

	closeUnit := func() {
		if bitOff >= 0 {
			off = unitOff + unitSize
			bitOff = -1
		}
	}

	for _, f := range si.Fields {
		fsize := tg.SizeOf(f.Type, mode)
		if f.Bits != 0 {
			base := types.Prune(f.Type)
			if base.Kind != types.KInt {
				return nil, fmt.Errorf("struct %s: bitfield %s has non-integer base", si.Name, f.Name)
			}
			baseSize := base.Bits / 8
			if mode == Packed {
				// Bit-contiguous packing across the whole struct.
				if bitOff < 0 {
					bitOff = 0
					unitOff = off
					unitSize = 0
				}
				// Offsets are bit-based from unitOff.
				fieldBitStart := bitOff
				l.Fields = append(l.Fields, Field{
					Name: f.Name, Type: f.Type,
					ByteOff: unitOff + fieldBitStart/8, BitOff: fieldBitStart % 8,
					BitWidth: f.Bits, Size: baseSize,
				})
				bitOff += f.Bits
				unitSize = (bitOff + 7) / 8
				continue
			}
			// Natural mode: C-style unit sharing.
			if bitOff < 0 || unitSize != baseSize || bitOff+f.Bits > baseSize*8 {
				closeUnit()
				off = alignUp(off, baseSize)
				unitOff = off
				unitSize = baseSize
				bitOff = 0
			}
			l.Fields = append(l.Fields, Field{
				Name: f.Name, Type: f.Type,
				ByteOff: unitOff, BitOff: bitOff, BitWidth: f.Bits, Size: baseSize,
			})
			bitOff += f.Bits
			if baseSize > 0 && baseSize > l.Align {
				l.Align = baseSize
			}
			continue
		}

		closeUnit()
		falign := tg.AlignOf(f.Type, mode)
		if mode == Packed {
			falign = 1
		}
		off = alignUp(off, falign)
		l.Fields = append(l.Fields, Field{
			Name: f.Name, Type: f.Type, ByteOff: off, Size: fsize,
		})
		off += fsize
		if falign > l.Align {
			l.Align = falign
		}
	}
	closeUnit()

	if mode == Packed {
		l.Align = 1
	}
	if si.Align > 0 {
		l.Align = si.Align
		if l.Align > tg.MaxAlign {
			l.Align = tg.MaxAlign
		}
	}
	l.Size = alignUp(off, l.Align)
	if l.Size == 0 {
		l.Size = 1 // empty structs still occupy a byte, as in C
	}
	return l, nil
}

// UnionLayout is the computed layout of a tagged union: a tag followed by the
// payload area sized for the largest arm.
type UnionLayout struct {
	Name    string
	Mode    Mode
	Size    int
	Align   int
	TagSize int
	Arms    []*StructLayout // one pseudo-struct layout per arm's payload
}

// OfUnion computes the layout of u under mode on the default target.
func OfUnion(u *types.UnionInfo, mode Mode) (*UnionLayout, error) {
	return DefaultTarget.OfUnion(u, mode)
}

// OfUnion computes the layout of u under mode.
func (tg Target) OfUnion(u *types.UnionInfo, mode Mode) (*UnionLayout, error) {
	ul := &UnionLayout{Name: u.Name, Mode: mode, TagSize: 1, Align: 1}
	if len(u.Arms) > 256 {
		ul.TagSize = 2
	}
	maxPayload := 0
	for _, arm := range u.Arms {
		pseudo := &types.StructInfo{Name: u.Name + "." + arm.Name, Fields: arm.Fields, Packed: mode == Packed}
		al, err := tg.Of(pseudo, mode)
		if err != nil {
			return nil, err
		}
		ul.Arms = append(ul.Arms, al)
		if len(arm.Fields) == 0 {
			continue // empty payload layout has the C minimum size 1; ignore
		}
		if al.Size > maxPayload {
			maxPayload = al.Size
		}
		if al.Align > ul.Align {
			ul.Align = al.Align
		}
	}
	if mode == Packed {
		ul.Align = 1
	}
	payloadOff := alignUp(ul.TagSize, ul.Align)
	ul.Size = alignUp(payloadOff+maxPayload, ul.Align)
	return ul, nil
}
