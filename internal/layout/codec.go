package layout

import (
	"fmt"

	"bitc/internal/types"
)

// ByteOrder selects how multi-byte scalar fields are serialised.
type ByteOrder int

// Byte orders. Bitfields always pack LSB-first within their storage unit;
// the order applies to whole storage units and plain scalar fields.
const (
	LittleEndian ByteOrder = iota
	BigEndian
)

func (o ByteOrder) String() string {
	if o == BigEndian {
		return "big-endian"
	}
	return "little-endian"
}

// scalarEncodable reports whether a field can be carried in a flat byte
// encoding (ints, bool, char, float bits, bitfields).
func scalarEncodable(f *Field) bool {
	if f.IsBitfield() {
		return true
	}
	t := types.Prune(f.Type)
	switch t.Kind {
	case types.KBool, types.KChar, types.KInt, types.KFloat:
		return true
	default:
		return false
	}
}

// Encodable reports whether every field of the layout is flat-encodable,
// i.e. the struct describes a wire format.
func (l *StructLayout) Encodable() bool {
	for i := range l.Fields {
		if !scalarEncodable(&l.Fields[i]) {
			return false
		}
	}
	return l.Mode != Boxed
}

func putUint(buf []byte, off, size int, order ByteOrder, v uint64) {
	for i := 0; i < size; i++ {
		shift := uint(8 * i)
		if order == BigEndian {
			shift = uint(8 * (size - 1 - i))
		}
		buf[off+i] = byte(v >> shift)
	}
}

func getUint(buf []byte, off, size int, order ByteOrder) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		shift := uint(8 * i)
		if order == BigEndian {
			shift = uint(8 * (size - 1 - i))
		}
		v |= uint64(buf[off+i]) << shift
	}
	return v
}

// Put writes v into the named field of buf (an instance laid out by l).
func (l *StructLayout) Put(buf []byte, field string, order ByteOrder, v uint64) error {
	f := l.FieldByName(field)
	if f == nil {
		return fmt.Errorf("layout %s: no field %s", l.Name, field)
	}
	if !scalarEncodable(f) {
		return fmt.Errorf("layout %s: field %s is not flat-encodable", l.Name, field)
	}
	if f.ByteOff+f.Size > len(buf) {
		return fmt.Errorf("layout %s: buffer too small (%d bytes) for field %s", l.Name, len(buf), field)
	}
	if !f.IsBitfield() {
		putUint(buf, f.ByteOff, f.Size, order, v)
		return nil
	}
	// Bitfields span at most their storage unit plus one byte in packed
	// mode; operate on a window large enough for the whole bit range.
	window := (f.BitOff + f.BitWidth + 7) / 8
	if f.ByteOff+window > len(buf) {
		return fmt.Errorf("layout %s: buffer too small for bitfield %s", l.Name, field)
	}
	mask := uint64(1)<<uint(f.BitWidth) - 1
	cur := getUint(buf, f.ByteOff, window, LittleEndian)
	cur = cur&^(mask<<uint(f.BitOff)) | (v&mask)<<uint(f.BitOff)
	putUint(buf, f.ByteOff, window, LittleEndian, cur)
	return nil
}

// Get reads the named field from buf.
func (l *StructLayout) Get(buf []byte, field string, order ByteOrder) (uint64, error) {
	f := l.FieldByName(field)
	if f == nil {
		return 0, fmt.Errorf("layout %s: no field %s", l.Name, field)
	}
	if !scalarEncodable(f) {
		return 0, fmt.Errorf("layout %s: field %s is not flat-encodable", l.Name, field)
	}
	if !f.IsBitfield() {
		if f.ByteOff+f.Size > len(buf) {
			return 0, fmt.Errorf("layout %s: buffer too small for field %s", l.Name, field)
		}
		v := getUint(buf, f.ByteOff, f.Size, order)
		return truncateToType(v, f), nil
	}
	window := (f.BitOff + f.BitWidth + 7) / 8
	if f.ByteOff+window > len(buf) {
		return 0, fmt.Errorf("layout %s: buffer too small for bitfield %s", l.Name, field)
	}
	cur := getUint(buf, f.ByteOff, window, LittleEndian)
	mask := uint64(1)<<uint(f.BitWidth) - 1
	return cur >> uint(f.BitOff) & mask, nil
}

func truncateToType(v uint64, f *Field) uint64 {
	t := types.Prune(f.Type)
	switch t.Kind {
	case types.KBool:
		return v & 1
	case types.KInt:
		if t.Bits < 64 {
			return v & (uint64(1)<<uint(t.Bits) - 1)
		}
	}
	return v
}

// Encode serialises field values (by name) into a fresh buffer of l.Size.
// Missing fields encode as zero; unknown names are an error.
func (l *StructLayout) Encode(vals map[string]uint64, order ByteOrder) ([]byte, error) {
	if !l.Encodable() {
		return nil, fmt.Errorf("layout %s (%s) is not flat-encodable", l.Name, l.Mode)
	}
	buf := make([]byte, l.Size)
	for name, v := range vals {
		if err := l.Put(buf, name, order, v); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Decode reads every field of an encoded instance.
func (l *StructLayout) Decode(buf []byte, order ByteOrder) (map[string]uint64, error) {
	if !l.Encodable() {
		return nil, fmt.Errorf("layout %s (%s) is not flat-encodable", l.Name, l.Mode)
	}
	out := make(map[string]uint64, len(l.Fields))
	for i := range l.Fields {
		v, err := l.Get(buf, l.Fields[i].Name, order)
		if err != nil {
			return nil, err
		}
		out[l.Fields[i].Name] = v
	}
	return out, nil
}

// Describe renders a human-readable offset table, one line per field —
// the output of `bitc dump-layout`.
func (l *StructLayout) Describe() string {
	s := fmt.Sprintf("struct %s (%s): size=%d align=%d padding=%d\n",
		l.Name, l.Mode, l.Size, l.Align, l.PaddingBytes())
	for _, f := range l.Fields {
		if f.IsBitfield() {
			s += fmt.Sprintf("  %-12s @%d.%d width=%d bits (unit %dB)\n",
				f.Name, f.ByteOff, f.BitOff, f.BitWidth, f.Size)
		} else {
			s += fmt.Sprintf("  %-12s @%-4d %dB %s\n", f.Name, f.ByteOff, f.Size, types.Prune(f.Type))
		}
	}
	return s
}
