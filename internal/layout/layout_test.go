package layout

import (
	"testing"
	"testing/quick"

	"bitc/internal/types"
)

func mkStruct(name string, fields ...types.FieldInfo) *types.StructInfo {
	return &types.StructInfo{Name: name, Fields: fields}
}

func fi(name string, t *types.Type) types.FieldInfo {
	return types.FieldInfo{Name: name, Type: t}
}

func bf(name string, t *types.Type, bits int) types.FieldInfo {
	return types.FieldInfo{Name: name, Type: t, Bits: bits}
}

func mustLayout(t *testing.T, si *types.StructInfo, mode Mode) *StructLayout {
	t.Helper()
	l, err := Of(si, mode)
	if err != nil {
		t.Fatalf("layout %s/%v: %v", si.Name, mode, err)
	}
	return l
}

func TestNaturalPaddingLikeC(t *testing.T) {
	// struct { u8 a; u64 b; u16 c; } — C gives 24 bytes on a 64-bit target.
	si := mkStruct("s", fi("a", types.Uint8), fi("b", types.Uint64), fi("c", types.Uint16))
	l := mustLayout(t, si, Natural)
	if l.Size != 24 || l.Align != 8 {
		t.Fatalf("size=%d align=%d, want 24/8", l.Size, l.Align)
	}
	if l.FieldByName("b").ByteOff != 8 || l.FieldByName("c").ByteOff != 16 {
		t.Errorf("offsets: b=%d c=%d", l.FieldByName("b").ByteOff, l.FieldByName("c").ByteOff)
	}
	if l.PaddingBytes() != 13 {
		t.Errorf("padding = %d, want 13", l.PaddingBytes())
	}
}

func TestPackedEliminatesPadding(t *testing.T) {
	si := mkStruct("s", fi("a", types.Uint8), fi("b", types.Uint64), fi("c", types.Uint16))
	l := mustLayout(t, si, Packed)
	if l.Size != 11 || l.Align != 1 {
		t.Fatalf("size=%d align=%d, want 11/1", l.Size, l.Align)
	}
	if l.FieldByName("b").ByteOff != 1 || l.FieldByName("c").ByteOff != 9 {
		t.Errorf("offsets: b=%d c=%d", l.FieldByName("b").ByteOff, l.FieldByName("c").ByteOff)
	}
	if l.PaddingBytes() != 0 {
		t.Errorf("padding = %d", l.PaddingBytes())
	}
}

func TestBoxedUniformRepresentation(t *testing.T) {
	si := mkStruct("s", fi("a", types.Uint8), fi("b", types.Uint64), fi("c", types.Uint16))
	l := mustLayout(t, si, Boxed)
	if l.Size != 24 { // three pointers
		t.Fatalf("size = %d, want 24", l.Size)
	}
	// Footprint adds a 16-byte box per field.
	if got := l.BoxedFootprint(); got != 24+3*16 {
		t.Errorf("boxed footprint = %d, want %d", got, 24+3*16)
	}
}

func TestBitfieldsShareUnitNaturally(t *testing.T) {
	// struct { u32 a:12; u32 b:12; u32 c:8; u8 d; } — one u32 unit + 1 byte.
	si := mkStruct("h",
		bf("a", types.Uint32, 12), bf("b", types.Uint32, 12), bf("c", types.Uint32, 8),
		fi("d", types.Uint8))
	l := mustLayout(t, si, Natural)
	a, b, c := l.FieldByName("a"), l.FieldByName("b"), l.FieldByName("c")
	if a.ByteOff != 0 || a.BitOff != 0 || b.BitOff != 12 || c.BitOff != 24 {
		t.Fatalf("bit offsets: a=%d.%d b=%d.%d c=%d.%d", a.ByteOff, a.BitOff, b.ByteOff, b.BitOff, c.ByteOff, c.BitOff)
	}
	if l.FieldByName("d").ByteOff != 4 {
		t.Errorf("d off = %d", l.FieldByName("d").ByteOff)
	}
	if l.Size != 8 { // 5 bytes rounded to align 4
		t.Errorf("size = %d, want 8", l.Size)
	}
}

func TestBitfieldOverflowOpensNewUnit(t *testing.T) {
	// u8 a:5; u8 b:5 — b does not fit in the same byte.
	si := mkStruct("h", bf("a", types.Uint8, 5), bf("b", types.Uint8, 5))
	l := mustLayout(t, si, Natural)
	b := l.FieldByName("b")
	if b.ByteOff != 1 || b.BitOff != 0 {
		t.Fatalf("b at %d.%d, want 1.0", b.ByteOff, b.BitOff)
	}
	if l.Size != 2 {
		t.Errorf("size = %d", l.Size)
	}
}

func TestPackedBitfieldsBitContiguous(t *testing.T) {
	// Packed: 5 + 5 bits = 10 bits = 2 bytes.
	si := &types.StructInfo{Name: "h", Packed: true,
		Fields: []types.FieldInfo{bf("a", types.Uint8, 5), bf("b", types.Uint8, 5)}}
	l := mustLayout(t, si, Packed)
	b := l.FieldByName("b")
	if b.ByteOff != 0 || b.BitOff != 5 {
		t.Fatalf("b at %d.%d, want 0.5", b.ByteOff, b.BitOff)
	}
	if l.Size != 2 {
		t.Errorf("size = %d, want 2", l.Size)
	}
}

func TestExplicitAlignOverride(t *testing.T) {
	si := &types.StructInfo{Name: "s", Align: 16,
		Fields: []types.FieldInfo{fi("a", types.Uint8)}}
	l := mustLayout(t, si, Natural)
	if l.Align != 16 || l.Size != 16 {
		t.Errorf("align=%d size=%d, want 16/16", l.Align, l.Size)
	}
}

func TestEmptyStructHasSizeOne(t *testing.T) {
	l := mustLayout(t, mkStruct("e"), Natural)
	if l.Size != 1 {
		t.Errorf("size = %d", l.Size)
	}
}

func TestNestedStructByValue(t *testing.T) {
	inner := mkStruct("inner", fi("x", types.Uint32), fi("y", types.Uint32))
	outer := mkStruct("outer", fi("tag", types.Uint8), fi("in", types.Struct(inner)), fi("z", types.Uint8))
	l := mustLayout(t, outer, Natural)
	if l.FieldByName("in").ByteOff != 4 || l.FieldByName("in").Size != 8 {
		t.Errorf("in at %d size %d", l.FieldByName("in").ByteOff, l.FieldByName("in").Size)
	}
	if l.Size != 16 {
		t.Errorf("size = %d, want 16", l.Size)
	}
}

func TestBoxedStructFieldIsPointer(t *testing.T) {
	inner := mkStruct("inner", fi("x", types.Uint32))
	boxed := &types.StructInfo{Name: "b", Boxed: true, Fields: []types.FieldInfo{fi("x", types.Uint32)}}
	outer := mkStruct("outer", fi("in", types.Struct(inner)), fi("bx", types.Struct(boxed)))
	l := mustLayout(t, outer, Natural)
	if l.FieldByName("in").Size != 4 {
		t.Errorf("by-value inner size = %d", l.FieldByName("in").Size)
	}
	if l.FieldByName("bx").Size != 8 {
		t.Errorf(":boxed struct field size = %d, want pointer", l.FieldByName("bx").Size)
	}
}

func TestArrayField(t *testing.T) {
	si := mkStruct("s", fi("data", types.Array(types.Uint8, 16)), fi("len", types.Uint32))
	l := mustLayout(t, si, Natural)
	if l.FieldByName("data").Size != 16 || l.FieldByName("len").ByteOff != 16 {
		t.Errorf("data size=%d len off=%d", l.FieldByName("data").Size, l.FieldByName("len").ByteOff)
	}
	if l.Size != 20 {
		t.Errorf("size = %d", l.Size)
	}
}

func TestUnionLayout(t *testing.T) {
	u := &types.UnionInfo{Name: "shape", Arms: []*types.ArmInfo{
		{Name: "Circle", Tag: 0, Fields: []types.FieldInfo{fi("r", types.Float64)}},
		{Name: "Rect", Tag: 1, Fields: []types.FieldInfo{fi("w", types.Float64), fi("h", types.Float64)}},
		{Name: "Empty", Tag: 2},
	}}
	ul, err := OfUnion(u, Natural)
	if err != nil {
		t.Fatal(err)
	}
	// tag(1) aligned to 8 + payload 16 = 24
	if ul.Size != 24 || ul.Align != 8 {
		t.Errorf("union size=%d align=%d, want 24/8", ul.Size, ul.Align)
	}
	ulp, err := OfUnion(u, Packed)
	if err != nil {
		t.Fatal(err)
	}
	if ulp.Size != 17 {
		t.Errorf("packed union size=%d, want 17", ulp.Size)
	}
}

func TestVectorAndStringAreReferences(t *testing.T) {
	if SizeOf(types.Vector(types.Int32), Natural) != 8 {
		t.Error("vector should be pointer-sized")
	}
	if SizeOf(types.String, Natural) != 8 {
		t.Error("string should be pointer-sized")
	}
	if SizeOf(types.Int16, Boxed) != 8 {
		t.Error("boxed scalar should be pointer-sized")
	}
}

func TestEncodeDecodeRoundTripPlainFields(t *testing.T) {
	si := mkStruct("s", fi("a", types.Uint8), fi("b", types.Uint32), fi("c", types.Uint16))
	for _, mode := range []Mode{Natural, Packed} {
		l := mustLayout(t, si, mode)
		for _, order := range []ByteOrder{LittleEndian, BigEndian} {
			in := map[string]uint64{"a": 0xAB, "b": 0xDEADBEEF, "c": 0x1234}
			buf, err := l.Encode(in, order)
			if err != nil {
				t.Fatalf("%v/%v: %v", mode, order, err)
			}
			out, err := l.Decode(buf, order)
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range in {
				if out[k] != v {
					t.Errorf("%v/%v: %s = %#x, want %#x", mode, order, k, out[k], v)
				}
			}
		}
	}
}

func TestEndianBytes(t *testing.T) {
	si := mkStruct("s", fi("b", types.Uint32))
	l := mustLayout(t, si, Packed)
	buf, _ := l.Encode(map[string]uint64{"b": 0x11223344}, BigEndian)
	if buf[0] != 0x11 || buf[3] != 0x44 {
		t.Errorf("big-endian bytes: % x", buf)
	}
	buf, _ = l.Encode(map[string]uint64{"b": 0x11223344}, LittleEndian)
	if buf[0] != 0x44 || buf[3] != 0x11 {
		t.Errorf("little-endian bytes: % x", buf)
	}
}

func TestBitfieldEncodeDecode(t *testing.T) {
	si := mkStruct("h",
		bf("version", types.Uint8, 4), bf("ihl", types.Uint8, 4),
		fi("ttl", types.Uint8))
	l := mustLayout(t, si, Natural)
	buf, err := l.Encode(map[string]uint64{"version": 4, "ihl": 5, "ttl": 64}, BigEndian)
	if err != nil {
		t.Fatal(err)
	}
	// version in low nibble (LSB-first), ihl in high nibble.
	if buf[0] != 0x54 {
		t.Errorf("byte0 = %#x, want 0x54", buf[0])
	}
	out, err := l.Decode(buf, BigEndian)
	if err != nil {
		t.Fatal(err)
	}
	if out["version"] != 4 || out["ihl"] != 5 || out["ttl"] != 64 {
		t.Errorf("decoded: %+v", out)
	}
}

func TestBitfieldMasking(t *testing.T) {
	si := mkStruct("h", bf("a", types.Uint8, 3), bf("b", types.Uint8, 5))
	l := mustLayout(t, si, Natural)
	buf := make([]byte, l.Size)
	if err := l.Put(buf, "a", LittleEndian, 0xFF); err != nil { // over-wide value truncates
		t.Fatal(err)
	}
	if err := l.Put(buf, "b", LittleEndian, 0x15); err != nil {
		t.Fatal(err)
	}
	a, _ := l.Get(buf, "a", LittleEndian)
	b, _ := l.Get(buf, "b", LittleEndian)
	if a != 7 || b != 0x15 {
		t.Errorf("a=%d b=%#x", a, b)
	}
}

func TestPutGetErrors(t *testing.T) {
	si := mkStruct("s", fi("a", types.Uint32), fi("v", types.Vector(types.Int32)))
	l := mustLayout(t, si, Natural)
	if err := l.Put(nil, "a", LittleEndian, 1); err == nil {
		t.Error("short buffer accepted")
	}
	if err := l.Put(make([]byte, l.Size), "nope", LittleEndian, 1); err == nil {
		t.Error("unknown field accepted")
	}
	if err := l.Put(make([]byte, l.Size), "v", LittleEndian, 1); err == nil {
		t.Error("aggregate field accepted")
	}
	if l.Encodable() {
		t.Error("layout with a vector field claims to be encodable")
	}
	if _, err := l.Encode(nil, LittleEndian); err == nil {
		t.Error("Encode on non-encodable layout")
	}
}

func TestPackedNeverLargerThanNatural(t *testing.T) {
	// Property: for random scalar structs, packed size <= natural size and
	// both are <= boxed footprint.
	scalars := []*types.Type{types.Uint8, types.Uint16, types.Uint32, types.Uint64,
		types.Int8, types.Int32, types.Float64, types.Bool, types.Char}
	check := func(picks []uint8) bool {
		if len(picks) == 0 || len(picks) > 24 {
			return true
		}
		var fields []types.FieldInfo
		for i, p := range picks {
			fields = append(fields, fi(fieldName(i), scalars[int(p)%len(scalars)]))
		}
		si := mkStruct("r", fields...)
		nat, err1 := Of(si, Natural)
		pk, err2 := Of(si, Packed)
		bx, err3 := Of(si, Boxed)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return pk.Size <= nat.Size && nat.Size <= bx.BoxedFootprint() && pk.PaddingBytes() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: encode/decode round-trips arbitrary field values (mod truncation).
func TestEncodeDecodeProperty(t *testing.T) {
	si := mkStruct("s",
		bf("f1", types.Uint16, 9), bf("f2", types.Uint16, 7),
		fi("f3", types.Uint32), fi("f4", types.Uint8))
	for _, mode := range []Mode{Natural, Packed} {
		l := mustLayout(t, si, mode)
		check := func(a, b uint16, c uint32, d uint8) bool {
			in := map[string]uint64{
				"f1": uint64(a) & 0x1FF, "f2": uint64(b) & 0x7F,
				"f3": uint64(c), "f4": uint64(d),
			}
			buf, err := l.Encode(in, LittleEndian)
			if err != nil {
				return false
			}
			out, err := l.Decode(buf, LittleEndian)
			if err != nil {
				return false
			}
			for k, v := range in {
				if out[k] != v {
					return false
				}
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}

func fieldName(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestDescribeOutput(t *testing.T) {
	si := mkStruct("hdr", bf("v", types.Uint8, 4), fi("ttl", types.Uint8))
	l := mustLayout(t, si, Natural)
	d := l.Describe()
	if d == "" || l.CacheLines() != 1 {
		t.Errorf("describe=%q lines=%d", d, l.CacheLines())
	}
}
