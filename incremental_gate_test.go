package bitc

import (
	"bytes"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"bitc/internal/analysis"
	"bitc/internal/core"
	"bitc/internal/corpus"
	"bitc/internal/factstore"
)

// renderReport snapshots a report in the pretty and JSON formats.
func renderReport(t *testing.T, rep *analysis.Report) string {
	t.Helper()
	var buf bytes.Buffer
	rep.Render(&buf)
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestIncrementalGate is the incremental-analysis acceptance gate, run from
// scripts/check.sh with BITC_INCR_GATE=1 (it is too slow for every plain
// `go test`). It generates a synthetic monorepo-scale corpus (~100k
// functions; override with BITC_INCR_GATE_FUNCS), then asserts the two
// hard claims of the incremental driver:
//
//  1. Correctness: after a one-function edit, a warm cached run renders
//     byte-identically to a fresh cold run of the edited text (checked at
//     a reduced scale where running a second cold analysis is cheap; the
//     per-example equality sweep in scripts/check.sh and the unit tests in
//     internal/analysis cover the golden corpus).
//  2. Latency: at full scale, warm re-analysis after a one-function edit
//     is at least 20x faster than the cold analysis (front end excluded on
//     both sides — parse and type-check are linear passes the cache cannot
//     and does not try to avoid).
func TestIncrementalGate(t *testing.T) {
	if os.Getenv("BITC_INCR_GATE") == "" {
		t.Skip("set BITC_INCR_GATE=1 to run the incremental scale gate")
	}
	nfuncs := 100000
	if s := os.Getenv("BITC_INCR_GATE_FUNCS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 100 {
			t.Fatalf("bad BITC_INCR_GATE_FUNCS %q", s)
		}
		nfuncs = n
	}
	const cluster = 25
	opts := analysis.Options{}

	// Correctness at reduced scale: warm-after-edit == fresh cold.
	{
		src := corpus.Text(2000, cluster)
		store := factstore.New()
		prog, err := core.LoadAnalysis("corpus.bitc", src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := prog.AnalyzeWithStore(opts, store); err != nil {
			t.Fatal(err)
		}
		edited := corpus.EditOne(src, 777)
		eprog, err := core.LoadAnalysis("corpus.bitc", edited)
		if err != nil {
			t.Fatal(err)
		}
		warmRep, err := eprog.AnalyzeWithStore(opts, store)
		if err != nil {
			t.Fatal(err)
		}
		freshRep, err := eprog.Analyze(opts)
		if err != nil {
			t.Fatal(err)
		}
		if renderReport(t, warmRep) != renderReport(t, freshRep) {
			t.Fatal("warm run after edit is not byte-identical to a fresh cold run")
		}
	}

	// Latency at full scale: cold analysis vs warm one-edit re-analysis.
	src := corpus.Text(nfuncs, cluster)
	prog, err := core.LoadAnalysis("corpus.bitc", src)
	if err != nil {
		t.Fatal(err)
	}
	store := factstore.New()
	runtime.GC()
	start := time.Now()
	coldRep, err := prog.AnalyzeWithStore(opts, store)
	if err != nil {
		t.Fatal(err)
	}
	coldNs := time.Since(start)

	edited := corpus.EditOne(src, nfuncs/2)
	eprog, err := core.LoadAnalysis("corpus.bitc", edited)
	if err != nil {
		t.Fatal(err)
	}
	// Collect the cold run's garbage before timing the warm run: the
	// measurement targets re-analysis latency, not the previous run's GC
	// debt (the watch daemon likewise idles between analyses).
	runtime.GC()
	start = time.Now()
	warmRep, err := eprog.AnalyzeWithStore(opts, store)
	if err != nil {
		t.Fatal(err)
	}
	warmNs := time.Since(start)

	if len(coldRep.Findings) != len(warmRep.Findings) {
		t.Errorf("finding count changed across the edit: %d -> %d",
			len(coldRep.Findings), len(warmRep.Findings))
	}
	ratio := float64(coldNs) / float64(warmNs)
	st := store.Stats()
	t.Logf("corpus: %d funcs; cold analysis %v, warm one-edit re-analysis %v (%.1fx); store: %d entries, %d hits, %d misses",
		nfuncs, coldNs, warmNs, ratio, st.Entries, st.Hits, st.Misses)
	if ratio < 20 {
		t.Errorf("warm re-analysis only %.1fx faster than cold; the gate requires >= 20x", ratio)
	}
}
