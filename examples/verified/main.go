// Verified: challenge 1 end to end. A bounded stack written with contracts,
// verified by the prover before it runs, then executed with runtime contract
// checking as a belt-and-braces demonstration.
//
// A deliberately broken variant shows what a failing proof looks like.
//
//	go run ./examples/verified
package main

import (
	"fmt"
	"log"

	"bitc/internal/core"
	"bitc/internal/verify"
	"bitc/internal/vm"
)

const stack = `
; A fixed-capacity stack: the kind of data structure kernels use for
; interrupt or scheduler bookkeeping, where overflow is a security bug.
(defstruct stk (data (vector int64)) (top int64) (cap int64))

(define (stk-new (cap int64)) stk
  :requires (> cap 0)
  (make stk :data (make-vector cap 0) :top 0 :cap cap))

(define (stk-push (s stk) (v int64)) unit
  :requires (< (field s top) (field s cap))
  (begin
    (vector-set! (field s data) (field s top) v)
    (set-field! s top (+ (field s top) 1))))

(define (stk-pop (s stk)) int64
  :requires (> (field s top) 0)
  (begin
    (set-field! s top (- (field s top) 1))
    (vector-ref (field s data) (field s top))))

(define (checked-push (s stk) (v int64)) bool
  (if (< (field s top) (field s cap))
      (begin (stk-push s v) #t)
      #f))

(define (main) int64
  (let ((s (stk-new 16)))
    (dotimes (i 10) (stk-push s (* i i)))
    (let ((mutable acc 0))
      (dotimes (i 10) (set! acc (+ acc (stk-pop s))))
      acc)))
`

const broken = `
(define (bad-index (n int64)) int64
  :requires (>= n 0)
  (let ((v (make-vector n 0)))
    (vector-ref v n)))   ; off by one: valid indices are 0..n-1
`

func main() {
	cfg := core.DefaultConfig
	cfg.EmitContracts = true
	prog, err := core.Load("stack.bitc", stack, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// What the verifier proves and what it flags is exactly the right split:
	//   ✓ checked-push's guard establishes stk-push's precondition;
	//   ✓ stk-new's positive-capacity requirement holds at its call;
	//   ✗ main's *raw* pushes/pops inside loops are unproven — the loop
	//     havocs the stack's state, so the obligation really is on the
	//     programmer (use checked-push, or add a loop invariant).
	rep := prog.Verify(verify.DefaultOptions)
	fmt.Println("bounded stack:", rep.Summary())
	for _, vc := range rep.VCs {
		mark := "✓"
		if !vc.Result.Proved {
			mark = "✗ (unguarded use in main)"
		}
		fmt.Printf("  %s [%s] %s (%s)\n", mark, vc.Kind, vc.Desc, vc.Result.Duration)
	}
	if rep.Proved < 2 {
		log.Fatal("guarded call sites should prove")
	}

	val, _, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum of popped squares = %d\n\n", val.I)

	// The contracts are also live at runtime: a pop on an empty stack traps
	// with the violated clause, not with memory corruption.
	empty := core.MustLoad("stack.bitc", stack+`
	  (define (underflow) int64 (stk-pop (stk-new 4)))`, cfg)
	if _, _, err := empty.RunFunc("underflow"); err != nil {
		fmt.Printf("runtime contract catch: %v\n\n", err)
	} else {
		log.Fatal("underflow was not caught")
	}

	// And the broken program: the prover pinpoints the off-by-one.
	bad, err := core.Load("broken.bitc", broken, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}
	badRep := bad.Verify(verify.DefaultOptions)
	fmt.Println("broken program:", badRep.Summary())
	for _, vc := range badRep.VCs {
		if !vc.Result.Proved {
			fmt.Printf("  ✗ [%s] %s\n    counterexample facts: %v\n",
				vc.Kind, vc.Desc, vc.Result.Counterexample)
		}
	}
	if badRep.Failed == 0 {
		log.Fatal("the prover missed the off-by-one")
	}
	_ = vm.IntValue
}
