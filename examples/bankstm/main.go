// Bankstm: the lecture slides' bank-account composability example, which the
// paper's challenge 4 (managing shared state) is about. The same transfer is
// run three ways on the deterministic scheduler:
//
//   - unsynchronised: the invariant breaks, and the lockset analysis says so
//     before the program even runs;
//
//   - coarse lock: correct, but the transfer's locking is part of its API;
//
//   - atomic (STM): correct and composable — the watcher thread composes two
//     reads into one consistent snapshot without knowing any lock order.
//
//     go run ./examples/bankstm
package main

import (
	"fmt"
	"log"

	"bitc/internal/core"
	"bitc/internal/vm"
)

// program builds the transfer variant; the final read uses the same
// discipline as the transfers (the lockset analysis has no join-ordering, so
// an unguarded read after join would be flagged — and guarding it is the
// honest way to write the observer anyway).
func program(body, read string) string {
	return `
(defstruct account (bal int64))
(define a1 account (make account :bal 1000))
(define a2 account (make account :bal 0))

(define (transfer-n (n int64)) unit
  (dotimes (i n)` + body + `))

(define (entry (n int64)) int64
  (let ((t1 (spawn (transfer-n n)))
        (t2 (spawn (transfer-n n))))
    (join t1) (join t2)
    ` + read + `))
`
}

func main() {
	variants := []struct {
		name string
		body string
		read string
	}{
		{"unsynchronised", `
    (let ((x (field a1 bal)))
      (yield)
      (set-field! a1 bal (- x 1))
      (set-field! a2 bal (+ (field a2 bal) 1)))`,
			`(+ (field a1 bal) (field a2 bal))`},
		{"coarse lock", `
    (with-lock bank
      (set-field! a1 bal (- (field a1 bal) 1))
      (set-field! a2 bal (+ (field a2 bal) 1)))`,
			`(with-lock bank (+ (field a1 bal) (field a2 bal)))`},
		{"atomic (STM)", `
    (atomic
      (set-field! a1 bal (- (field a1 bal) 1))
      (set-field! a2 bal (+ (field a2 bal) 1)))`,
			`(atomic (+ (field a1 bal) (field a2 bal)))`},
	}

	const transfers = 400
	for _, v := range variants {
		cfg := core.DefaultConfig
		cfg.Seed = 99
		cfg.Quantum = 9
		prog, err := core.Load(v.name, program(v.body, v.read), cfg)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}

		races := prog.Races()
		val, machine, err := prog.RunFunc("entry", vm.IntValue(transfers))
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		verdict := "invariant HELD"
		if val.I != 1000 {
			verdict = fmt.Sprintf("invariant VIOLATED: drift %+d", val.I-1000)
		}
		fmt.Printf("%-16s total=%4d  %-28s static races=%d  commits=%d aborts=%d\n",
			v.name, val.I, verdict, len(races.Races),
			machine.Stats.TxCommits, machine.Stats.TxAborts)
	}

	fmt.Println("\nthe STM watcher composes without knowing any lock order:")
	watcher := `
(defstruct account (bal int64))
(define a1 account (make account :bal 1000))
(define a2 account (make account :bal 0))
(define (mover (n int64)) unit
  (dotimes (i n)
    (atomic
      (set-field! a1 bal (- (field a1 bal) 1))
      (set-field! a2 bal (+ (field a2 bal) 1)))))
(define (entry (n int64)) int64
  (let ((t (spawn (mover n))))
    (let ((mutable bad 0))
      (dotimes (i n)
        (atomic
          (if (!= (+ (field a1 bal) (field a2 bal)) 1000)
              (set! bad (+ bad 1))
              ())))
      (join t)
      bad)))
`
	cfg := core.DefaultConfig
	cfg.Seed = 3
	cfg.Quantum = 5
	prog, err := core.Load("watcher", watcher, cfg)
	if err != nil {
		log.Fatal(err)
	}
	val, machine, err := prog.RunFunc("entry", vm.IntValue(300))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watcher saw %d inconsistent snapshots in 300 probes (aborts=%d)\n",
		val.I, machine.Stats.TxAborts)
	if val.I != 0 {
		log.Fatal("STM exposed an intermediate state")
	}
}
