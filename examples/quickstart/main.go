// Quickstart: load a bitc program through the public API, run it, and look
// at the VM's instrumentation — the five-minute tour of the toolchain.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"bitc/internal/core"
	"bitc/internal/vm"
)

const program = `
; A first bitc program: inferred types, explicit widths where they matter.
(defstruct stats (count int64) (total int64))

(define (record (s stats) (sample int64)) unit
  (set-field! s count (+ (field s count) 1))
  (set-field! s total (+ (field s total) sample)))

(define (mean (s stats)) int64
  :requires (> (field s count) 0)
  (/ (field s total) (field s count)))

(define (main) int64
  (let ((s (make stats :count 0 :total 0)))
    (dotimes (i 100)
      (record s (* i 3)))
    (println (string-append "mean of 0,3,...,297 is "
                            "computed below:"))
    (let ((m (mean s)))
      (println m)
      m)))
`

func main() {
	cfg := core.DefaultConfig
	cfg.Stdout = os.Stdout

	prog, err := core.Load("quickstart.bitc", program, cfg)
	if err != nil {
		log.Fatal(err)
	}

	val, machine, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmain returned %s\n", val.String())
	fmt.Printf("executed %d instructions, %d calls, %d heap objects (%d bytes)\n",
		machine.Stats.Instrs, machine.Stats.Calls, machine.Stats.Allocs, machine.Stats.HeapBytes)

	// The same program under the uniform boxed representation: same answer,
	// very different machine behaviour — the paper's fallacy 1 in two lines.
	cfgBoxed := cfg
	cfgBoxed.Mode = vm.Boxed
	cfgBoxed.Stdout = nil // quiet second run
	boxedProg := core.MustLoad("quickstart.bitc", program, cfgBoxed)
	_, boxedVM, err := boxedProg.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boxed mode allocated %d scalar boxes (%d bytes) for the identical program\n",
		boxedVM.Stats.BoxAllocs, boxedVM.Stats.BoxBytes)
}
