// Packetparser: challenge 3 (control over data representation) end to end.
//
// A bitc struct with 4/13/3-bit bitfields describes an IPv4-style header
// bit-exactly; the layout engine turns it into a 20-byte wire codec; a bitc
// program validates parsed headers. This is the workload the paper's
// representation argument is about: network code cannot accept "the compiler
// picks the layout".
//
//	go run ./examples/packetparser
package main

import (
	"fmt"
	"log"
	"os"

	"bitc/internal/core"
	"bitc/internal/layout"
	"bitc/internal/vm"
)

const program = `
(defstruct ipv4 :packed
  (version (bitfield uint8 4))
  (ihl (bitfield uint8 4))
  (tos uint8)
  (length uint16)
  (id uint16)
  (flags (bitfield uint16 3))
  (frag (bitfield uint16 13))
  (ttl uint8)
  (proto uint8)
  (checksum uint16)
  (src uint32)
  (dst uint32))

; Validation logic written against the typed struct, not raw bytes.
(define (valid-header (version int64) (ihl int64) (ttl int64) (len int64)) bool
  (and (= version 4)
       (and (>= ihl 5)
            (and (> ttl 0) (>= len 20)))))
`

func main() {
	prog, err := core.Load("ipv4.bitc", program, core.DefaultConfig)
	if err != nil {
		log.Fatal(err)
	}

	l, err := prog.LayoutOf("ipv4", layout.Packed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(l.Describe())
	if l.Size != 20 {
		log.Fatalf("an IPv4 header must be 20 bytes, got %d", l.Size)
	}

	// Build three packets on the wire, one of them bad.
	packets := []map[string]uint64{
		{"version": 4, "ihl": 5, "tos": 0, "length": 1500, "id": 1, "flags": 2,
			"frag": 0, "ttl": 64, "proto": 6, "checksum": 0xAAAA, "src": 0x0A000001, "dst": 0x0A000002},
		{"version": 4, "ihl": 6, "tos": 0, "length": 576, "id": 2, "flags": 0,
			"frag": 185, "ttl": 8, "proto": 17, "checksum": 0xBBBB, "src": 0x0A000003, "dst": 0x0A000004},
		{"version": 6, "ihl": 5, "tos": 0, "length": 40, "id": 3, "flags": 0,
			"frag": 0, "ttl": 0, "proto": 6, "checksum": 0xCCCC, "src": 1, "dst": 2}, // wrong version, dead TTL
	}

	for i, fields := range packets {
		wire, err := l.Encode(fields, layout.BigEndian)
		if err != nil {
			log.Fatal(err)
		}
		parsed, err := l.Decode(wire, layout.BigEndian)
		if err != nil {
			log.Fatal(err)
		}
		// Hand the parsed fields to the bitc validator.
		val, _, err := prog.RunFunc("valid-header",
			vm.IntValue(int64(parsed["version"])),
			vm.IntValue(int64(parsed["ihl"])),
			vm.IntValue(int64(parsed["ttl"])),
			vm.IntValue(int64(parsed["length"])))
		if err != nil {
			log.Fatal(err)
		}
		verdict := "ACCEPT"
		if val.I == 0 {
			verdict = "DROP"
		}
		fmt.Printf("packet %d: % x...  version=%d ihl=%d ttl=%d frag=%d -> %s\n",
			i, wire[:8], parsed["version"], parsed["ihl"], parsed["ttl"], parsed["frag"], verdict)
		if parsed["frag"] != fields["frag"] {
			log.Fatalf("13-bit fragment field corrupted: %d != %d", parsed["frag"], fields["frag"])
		}
	}

	// Contrast with the representations a managed language would give us.
	ln, _ := prog.LayoutOf("ipv4", layout.Natural)
	fmt.Printf("\nfootprints: packed=%dB natural=%dB boxed=%dB per header\n",
		l.Size, ln.Size, func() int { lb, _ := prog.LayoutOf("ipv4", layout.Boxed); return lb.BoxedFootprint() }())
	os.Exit(0)
}
