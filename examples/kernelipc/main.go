// Kernelipc: the microkernel-flavoured workload that motivates the paper
// (the author built EROS and Coyotos). A server thread receives request
// messages over a channel, processes them inside a region (the per-request
// arena idiom kernels use), and replies; the client measures round trips.
//
// The region checker proves the per-request scratch data cannot leak, and
// the VM enforces it dynamically.
//
//	go run ./examples/kernelipc
package main

import (
	"fmt"
	"log"
	"os"

	"bitc/internal/core"
)

const program = `
; An IPC request: operation code and two operands. Replies carry a status
; and a result word — the classic L4-ish shape.
(defstruct request (op int64) (a int64) (b int64) (reply (chan int64)))

(define op-add int64 0)
(define op-mul int64 1)
(define op-checksum int64 2)

; Per-request scratch buffer, allocated in the request's region and dead the
; moment the reply is sent: the arena idiom the paper wants languages to own.
(defstruct scratch (acc int64) (steps int64))

(define (serve-one (r request)) unit
  (with-region arena
    (let ((s (alloc-in arena (make scratch :acc 0 :steps 0))))
      (if (= (field r op) op-add)
          (set-field! s acc (+ (field r a) (field r b)))
          (if (= (field r op) op-mul)
              (set-field! s acc (* (field r a) (field r b)))
              ; checksum: fold a over b rounds
              (begin
                (set-field! s acc (field r a))
                (dotimes (i (field r b))
                  (set-field! s acc
                    (bitxor (* (field s acc) 31) (+ i 7)))))))
      (send (field r reply) (field s acc)))))

(define (server (inbox (chan request)) (n int64)) unit
  (dotimes (i n)
    (serve-one (recv inbox))))

(define (main) int64
  (let ((inbox (make-chan 8))
        (reply (make-chan 1)))
    (let ((srv (spawn (server inbox 300))))
      (let ((mutable acc 0))
        (dotimes (i 100)
          (send inbox (make request :op op-add :a i :b i :reply reply))
          (set! acc (+ acc (recv reply))))
        (dotimes (i 100)
          (send inbox (make request :op op-mul :a i :b 3 :reply reply))
          (set! acc (+ acc (recv reply))))
        (dotimes (i 100)
          (send inbox (make request :op op-checksum :a i :b 5 :reply reply))
          (set! acc (bitxor acc (recv reply))))
        (join srv)
        acc))))
`

func main() {
	cfg := core.DefaultConfig
	cfg.Stdout = os.Stdout
	cfg.Seed = 7
	prog, err := core.Load("kernelipc.bitc", program, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Static guarantees first: no region escapes, no races on shared state.
	if esc := prog.CheckRegions(); len(esc) != 0 {
		for _, e := range esc {
			fmt.Println("escape:", e)
		}
		log.Fatal("region checker found escapes in the IPC server")
	}
	races := prog.Races()
	fmt.Printf("static analysis: 0 region escapes, %d potential races\n", len(races.Races))

	val, machine, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("300 IPC round trips completed; folded result = %d\n", val.I)
	fmt.Printf("scheduler: %d context switches across %d instructions\n",
		machine.Stats.Switches, machine.Stats.Instrs)
	fmt.Printf("memory: %d allocations, %d of them region-allocated request scratch\n",
		machine.Stats.Allocs, machine.Stats.RegionAllocs)
	if machine.Stats.RegionAllocs < 300 {
		log.Fatalf("expected one region allocation per request, got %d", machine.Stats.RegionAllocs)
	}

	// Determinism: the same seed reproduces the interleaving exactly.
	val2, machine2, err := prog.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-run with the same seed: result %d, switches %d (identical: %v)\n",
		val2.I, machine2.Stats.Switches, val.I == val2.I)
}
