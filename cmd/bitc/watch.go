// bitc analyze's incremental modes: the polling -watch daemon, the
// -verify-cache correctness gate, and the -warm primed-cache run. All three
// stand on core.LoadAnalysis (parse + type-check only; the analyzers never
// need compiled code) and core.AnalyzeWithStore, the incremental driver.
package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"bitc/internal/analysis"
	"bitc/internal/core"
	"bitc/internal/factstore"
	"bitc/internal/obs"
	"bitc/internal/source"
)

// analyzeConfig carries the parsed analyze-mode flags from main.
type analyzeConfig struct {
	opts     analysis.Options
	format   string // pretty|json|sarif
	watch    bool
	interval time.Duration
	metrics  string // path of the bitc-metrics/v1 file -watch maintains
	verify   bool   // -verify-cache
	warm     bool   // -warm
	keepRuns uint64 // -keep-runs: fact-store retention window (0 = default 8)
}

// retention returns the fact-store pruning window: facts untouched for this
// many runs are evicted after each re-analysis.
func (c analyzeConfig) retention() uint64 {
	if c.keepRuns == 0 {
		return 8
	}
	return c.keepRuns
}

// runAnalyze dispatches `bitc analyze` once the flags are parsed.
func runAnalyze(path, src string, cfg analyzeConfig) error {
	switch {
	case cfg.verify:
		return verifyCache(path, src, cfg)
	case cfg.watch:
		return newWatcher(path, cfg, os.Stdout).loop()
	}
	prog, err := core.LoadAnalysis(path, src)
	if err != nil {
		return err
	}
	var rep *analysis.Report
	if cfg.warm {
		// Prime a fact store with one run, then re-parse and render the
		// warm re-analysis — the exact code path a long-lived daemon
		// serves, so baseline and suppression accounting are maintained
		// against cached results, not only cold ones.
		store := factstore.New()
		if _, err := prog.AnalyzeWithStore(cfg.opts, store); err != nil {
			return err
		}
		reprog, rerr := core.LoadAnalysis(path, src)
		if rerr != nil {
			return rerr
		}
		rep, err = reprog.AnalyzeWithStore(cfg.opts, store)
	} else {
		rep, err = prog.Analyze(cfg.opts)
	}
	if err != nil {
		return err
	}
	if err := writeReport(os.Stdout, rep, cfg.format); err != nil {
		return err
	}
	if rep.HasErrors() {
		return fmt.Errorf("analysis reported %d error-severity findings", rep.CountBySeverity(source.Error))
	}
	return nil
}

func writeReport(w io.Writer, rep *analysis.Report, format string) error {
	switch format {
	case "json":
		return rep.WriteJSON(w)
	case "sarif":
		return rep.WriteSARIF(w)
	case "pretty":
		rep.Render(w)
		return nil
	default:
		return fmt.Errorf("unknown -format %q (want pretty, json, or sarif)", format)
	}
}

// verifyCache is the cache-correctness gate behind -verify-cache: analyze
// cold, then prime a fact store and re-analyze a fresh parse warm; the two
// reports must render byte-identically (pretty and JSON both). CI sweeps
// this over every shipped example, so a key-scheme bug that let a stale
// fact survive cannot land silently.
func verifyCache(path, src string, cfg analyzeConfig) error {
	cold, err := core.LoadAnalysis(path, src)
	if err != nil {
		return err
	}
	coldRep, err := cold.Analyze(cfg.opts)
	if err != nil {
		return err
	}
	store := factstore.New()
	prime, err := core.LoadAnalysis(path, src)
	if err != nil {
		return err
	}
	if _, err := prime.AnalyzeWithStore(cfg.opts, store); err != nil {
		return err
	}
	warm, err := core.LoadAnalysis(path, src)
	if err != nil {
		return err
	}
	warmRep, err := warm.AnalyzeWithStore(cfg.opts, store)
	if err != nil {
		return err
	}
	coldBytes, err := renderAll(coldRep)
	if err != nil {
		return err
	}
	warmBytes, err := renderAll(warmRep)
	if err != nil {
		return err
	}
	if !bytes.Equal(coldBytes, warmBytes) {
		return fmt.Errorf("verify-cache %s: warm report differs from cold (%d vs %d findings)",
			path, len(warmRep.Findings), len(coldRep.Findings))
	}
	st := store.Stats()
	fmt.Printf("verify-cache %s: OK (%d findings; %d cache entries, %d hits)\n",
		path, len(coldRep.Findings), st.Entries, st.Hits)
	return nil
}

func renderAll(rep *analysis.Report) ([]byte, error) {
	var buf bytes.Buffer
	rep.Render(&buf)
	if err := rep.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// watcher is the `bitc analyze -watch` daemon: a poll loop (mtime+size; no
// platform watch dependency) holding one fact store across re-analyses, so
// every run after the first pays only for what the edit invalidated. It
// prints finding deltas rather than full reports, and optionally maintains
// a bitc-metrics/v1 file with the cold/warm re-analysis latencies.
type watcher struct {
	path string
	cfg  analyzeConfig
	out  io.Writer

	store   *factstore.Store
	started bool
	mtime   time.Time
	size    int64
	runs    int
	prev    map[string]int // finding line multiset of the last good run
	lastErr string
	prevSt  factstore.Stats
	metrics *obs.MetricsDoc
}

func newWatcher(path string, cfg analyzeConfig, out io.Writer) *watcher {
	return &watcher{
		path: path, cfg: cfg, out: out,
		store:   factstore.New(),
		metrics: obs.NewMetricsDoc("WATCH", false),
	}
}

func (w *watcher) loop() error {
	fmt.Fprintf(w.out, "[watch] %s every %s (ctrl-c to stop)\n", w.path, w.cfg.interval)
	for {
		if _, err := w.step(false); err != nil {
			return err
		}
		time.Sleep(w.cfg.interval)
	}
}

// step performs one poll: if the file changed (or force is set), re-read,
// re-analyze against the shared store, and report what changed. It returns
// whether an analysis ran. Only I/O errors are returned — parse and type
// errors are printed once and cleared by the next good run, like a
// compiler in a rebuild loop.
func (w *watcher) step(force bool) (bool, error) {
	st, err := os.Stat(w.path)
	if err != nil {
		return false, err
	}
	if !force && w.started && st.ModTime().Equal(w.mtime) && st.Size() == w.size {
		return false, nil
	}
	w.started = true
	w.mtime, w.size = st.ModTime(), st.Size()
	src, err := os.ReadFile(w.path)
	if err != nil {
		return false, err
	}
	prog, err := core.LoadAnalysis(w.path, string(src))
	if err != nil {
		if msg := err.Error(); msg != w.lastErr {
			fmt.Fprintf(w.out, "[watch] %s\n", msg)
			w.lastErr = msg
		}
		return false, nil
	}
	w.lastErr = ""

	start := time.Now()
	rep, err := prog.AnalyzeWithStore(w.cfg.opts, w.store)
	if err != nil {
		return false, err
	}
	elapsed := time.Since(start)
	w.runs++
	mode := "warm"
	if w.runs == 1 {
		mode = "cold"
	}

	lines := findingLines(rep)
	cur := make(map[string]int, len(lines))
	for _, l := range lines {
		cur[l]++
	}
	added, removed := diffLines(w.prev, cur)
	stats := w.store.Stats()
	hits := stats.Hits - w.prevSt.Hits
	misses := stats.Misses - w.prevSt.Misses
	w.prevSt = stats
	fmt.Fprintf(w.out, "[watch] run %d (%s): %d findings (+%d -%d) in %s; cache %d entries, %d hits, %d misses\n",
		w.runs, mode, len(rep.Findings), len(added), len(removed), elapsed.Round(time.Microsecond),
		stats.Entries, hits, misses)
	if w.runs == 1 {
		for _, l := range lines {
			fmt.Fprintf(w.out, "  %s\n", l)
		}
	} else {
		for _, l := range added {
			fmt.Fprintf(w.out, "  + %s\n", l)
		}
		for _, l := range removed {
			fmt.Fprintf(w.out, "  - %s\n", l)
		}
	}
	w.prev = cur

	if w.cfg.metrics != "" {
		w.metrics.Rows = append(w.metrics.Rows, obs.Metrics{
			Workload:   filepath.Base(w.path),
			Mode:       mode,
			AnalysisNS: elapsed.Nanoseconds(),
			Derived: map[string]float64{
				"findings":    float64(len(rep.Findings)),
				"cacheHits":   float64(hits),
				"cacheMisses": float64(misses),
				"entries":     float64(stats.Entries),
			},
		})
		if err := w.metrics.WriteFile(w.cfg.metrics); err != nil {
			return true, err
		}
	}
	// Bound the daemon's memory: facts untouched for -keep-runs edits are
	// garbage from definitions that no longer exist in that form.
	w.store.Prune(w.cfg.retention())
	return true, nil
}

// findingLines renders each finding as one stable line (the same shape as
// the pretty renderer's primary lines), for multiset delta reporting.
func findingLines(rep *analysis.Report) []string {
	lines := make([]string, 0, len(rep.Findings))
	for _, f := range rep.Findings {
		loc := "<unknown>"
		if rep.File != nil && f.Span.IsValid() {
			loc = rep.File.Describe(f.Span.Start)
		}
		lines = append(lines, fmt.Sprintf("%s: %s[%s]: %s", loc, f.Severity, f.Code, f.Message))
	}
	return lines
}

// diffLines returns the lines added and removed between two multisets,
// sorted, with multiplicity.
func diffLines(prev, cur map[string]int) (added, removed []string) {
	for l, n := range cur {
		for i := prev[l]; i < n; i++ {
			added = append(added, l)
		}
	}
	for l, n := range prev {
		for i := cur[l]; i < n; i++ {
			removed = append(removed, l)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}
