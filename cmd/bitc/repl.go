package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"bitc/internal/core"
	"bitc/internal/opt"
	"bitc/internal/vm"
)

// repl implements `bitc repl`: an interactive session that accumulates
// definitions and evaluates expressions against them. Definitions that fail
// to load are rejected and discarded; the session state is the growing list
// of accepted definitions, re-checked as a whole on every input, so the REPL
// can never wedge itself into an unloadable state.
func repl(in io.Reader, out io.Writer) error {
	fmt.Fprintln(out, "bitc repl — enter definitions or expressions; :quit to exit")
	var defs []string
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)

	var pending strings.Builder
	for {
		prompt := "bitc> "
		if pending.Len() > 0 {
			prompt = "  ... "
		}
		fmt.Fprint(out, prompt)
		if !scanner.Scan() {
			fmt.Fprintln(out)
			return scanner.Err()
		}
		line := scanner.Text()
		switch strings.TrimSpace(line) {
		case ":quit", ":q":
			return nil
		case ":defs":
			for _, d := range defs {
				fmt.Fprintln(out, d)
			}
			continue
		case ":reset":
			defs = nil
			pending.Reset()
			fmt.Fprintln(out, "session cleared")
			continue
		case "":
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		text := pending.String()
		if !balanced(text) {
			continue // keep reading lines until the parens close
		}
		pending.Reset()
		evalInput(out, &defs, strings.TrimSpace(text))
	}
}

// balanced reports whether every opening paren/bracket has closed, ignoring
// those inside strings and comments.
func balanced(text string) bool {
	depth := 0
	inStr := false
	inComment := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case inComment:
			if c == '\n' {
				inComment = false
			}
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == ';':
			inComment = true
		case c == '(' || c == '[':
			depth++
		case c == ')' || c == ']':
			depth--
		}
	}
	return depth <= 0
}

func isDefinition(text string) bool {
	for _, prefix := range []string{"(define", "(defstruct", "(defunion", "(external"} {
		if strings.HasPrefix(text, prefix) {
			return true
		}
	}
	return false
}

const replFn = "repl-eval"

func evalInput(out io.Writer, defs *[]string, text string) {
	cfg := core.Config{Optimize: opt.O1, Stdout: out}
	if isDefinition(text) {
		candidate := append(append([]string{}, *defs...), text)
		if _, err := core.Load("repl", strings.Join(candidate, "\n"), cfg); err != nil {
			fmt.Fprintln(out, "error:", firstLine(err))
			return
		}
		*defs = candidate
		fmt.Fprintln(out, "defined")
		return
	}
	// Expression: wrap it in a throwaway function and run it.
	src := strings.Join(*defs, "\n") + fmt.Sprintf("\n(define (%s) %s)", replFn, text)
	prog, err := core.Load("repl", src, cfg)
	if err != nil {
		fmt.Fprintln(out, "error:", firstLine(err))
		return
	}
	val, _, err := prog.RunFunc(replFn)
	if err != nil {
		fmt.Fprintln(out, "error:", firstLine(err))
		return
	}
	if val != (vm.Value{}) && val.String() != "()" {
		fmt.Fprintln(out, val.String())
	}
}

func firstLine(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i > 0 {
		return s[:i] + " …"
	}
	return s
}
