package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeProg drops source into a temp .bitc file and returns its path.
func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.bitc")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs the CLI with stdout redirected to a pipe.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	out, _ := os.ReadFile(asFile(r))
	return string(out), runErr
}

// asFile drains a pipe reader into a temp file so capture stays simple.
func asFile(r *os.File) string {
	f, _ := os.CreateTemp("", "out")
	defer f.Close()
	buf := make([]byte, 1<<16)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			f.Write(buf[:n])
		}
		if err != nil {
			break
		}
	}
	return f.Name()
}

const good = `
(defstruct pt (x int32) (y int32))
(defunion opt (None) (Some (v int32)))
(define (main) int64
  (println "hi")
  (+ 40 2))
`

func TestCheckCommand(t *testing.T) {
	out, err := capture(t, []string{"check", writeProg(t, good)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "OK") {
		t.Errorf("output = %q", out)
	}
}

func TestRunCommand(t *testing.T) {
	out, err := capture(t, []string{"run", writeProg(t, good)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hi") || !strings.Contains(out, "=> 42") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "[unboxed]") {
		t.Errorf("stats line missing: %q", out)
	}
}

func TestRunBoxedFlag(t *testing.T) {
	out, err := capture(t, []string{"run", "-boxed", writeProg(t, good)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[boxed]") {
		t.Errorf("output = %q", out)
	}
}

func TestRunCustomEntry(t *testing.T) {
	src := `(define (other) int64 7)`
	out, err := capture(t, []string{"run", "-entry", "other", writeProg(t, src)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "=> 7") {
		t.Errorf("output = %q", out)
	}
}

func TestVerifyCommandPass(t *testing.T) {
	src := `(define (f (x int64)) int64 :requires (> x 0) :ensures (> %result 0) (+ x 1))`
	out, err := capture(t, []string{"verify", writeProg(t, src)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PROVED") || strings.Contains(out, "FAILED") {
		t.Errorf("output = %q", out)
	}
}

func TestVerifyCommandFail(t *testing.T) {
	src := `(define (f (x int64)) int64 :ensures (> %result x) (- x 1))`
	out, err := capture(t, []string{"verify", writeProg(t, src)})
	if err == nil {
		t.Fatal("verify should fail")
	}
	if !strings.Contains(out, "FAILED") || !strings.Contains(out, "counterexample") {
		t.Errorf("output = %q", out)
	}
}

const racy = `
(defstruct cell (v int64))
(define shared cell (make cell :v 0))
(define (w) unit (set-field! shared v 1))
(define (main) unit
  (let ((t1 (spawn (w))) (t2 (spawn (w)))) (join t1) (join t2)))`

func TestAnalyzeCommand(t *testing.T) {
	out, err := capture(t, []string{"analyze", writeProg(t, racy)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "BITC-RACE001") {
		t.Errorf("race not reported: %q", out)
	}
	if !strings.Contains(out, "warning[") || !strings.Contains(out, "findings") {
		t.Errorf("pretty format wrong: %q", out)
	}
}

func TestAnalyzeJSONFlag(t *testing.T) {
	out, err := capture(t, []string{"analyze", "-json", writeProg(t, racy)})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Findings []struct {
			Code string `json:"code"`
		} `json:"findings"`
		Warnings int `json:"warnings"`
	}
	if jerr := json.Unmarshal([]byte(out), &doc); jerr != nil {
		t.Fatalf("invalid JSON: %v\n%s", jerr, out)
	}
	if len(doc.Findings) == 0 || doc.Findings[0].Code != "BITC-RACE001" {
		t.Errorf("findings = %+v", doc.Findings)
	}
}

func TestAnalyzeEnableDisableFlags(t *testing.T) {
	out, err := capture(t, []string{"analyze", "-disable", "race", writeProg(t, racy)})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "BITC-RACE001") {
		t.Errorf("disabled analyzer still ran: %q", out)
	}
	out, err = capture(t, []string{"analyze", "-enable", "deadstore", writeProg(t, racy)})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "BITC-RACE001") {
		t.Errorf("-enable did not restrict the suite: %q", out)
	}
	if err := run([]string{"analyze", "-enable", "bogus", writeProg(t, racy)}); err == nil {
		t.Error("unknown analyzer accepted")
	}
}

func TestAnalyzeSeverityFlagAndExitCode(t *testing.T) {
	// Warnings alone exit 0; -severity error filters them out of the report.
	out, err := capture(t, []string{"analyze", "-severity", "error", writeProg(t, racy)})
	if err != nil {
		t.Fatalf("warnings must not fail the exit-code contract: %v", err)
	}
	if strings.Contains(out, "BITC-RACE001") {
		t.Errorf("severity filter leak: %q", out)
	}
	// An unmarshallable external is error severity: non-zero exit.
	bad := `
	  (external keep (-> ((vector int64)) int64) "keep")
	  (define (main) int64 7)`
	if err := run([]string{"analyze", writeProg(t, bad)}); err == nil {
		t.Error("error-severity findings must make analyze fail")
	}
}

func TestDumpIRCommand(t *testing.T) {
	out, err := capture(t, []string{"dump-ir", writeProg(t, good)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "func main") || !strings.Contains(out, "ret") {
		t.Errorf("output = %q", out)
	}
}

func TestDumpLayoutCommand(t *testing.T) {
	out, err := capture(t, []string{"dump-layout", writeProg(t, good)})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"struct pt (natural)", "struct pt (packed)", "struct pt (boxed)", "union opt"} {
		if !strings.Contains(out, want) {
			t.Errorf("layout dump missing %q:\n%s", want, out)
		}
	}
}

func TestFmtCommand(t *testing.T) {
	out, err := capture(t, []string{"fmt", writeProg(t, "(define   (main)\n   int64\n 1)")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(define (main) int64 1)") {
		t.Errorf("output = %q", out)
	}
}

func TestErrorPaths(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"bogus", writeProg(t, good)}); err == nil {
		t.Error("unknown command accepted")
	}
	if err := run([]string{"check"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"check", "/does/not/exist.bitc"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"check", writeProg(t, "(define")}); err == nil {
		t.Error("parse error not surfaced")
	}
	if err := run([]string{"run", "-contracts", writeProg(t,
		`(define (main) int64 (bad-call))`)}); err == nil {
		t.Error("type error not surfaced")
	}
}

func TestRunContractsFlag(t *testing.T) {
	src := `
	  (define (f (x int64)) int64 :requires (> x 5) x)
	  (define (main) int64 (f 1))`
	if err := run([]string{"run", "-contracts", writeProg(t, src)}); err == nil {
		t.Error("contract violation not trapped")
	}
	if err := run([]string{"run", writeProg(t, src)}); err != nil {
		t.Errorf("without -contracts: %v", err)
	}
}

func TestVerifyFlags(t *testing.T) {
	src := `(define (f (x int64)) int64 (/ 100 x))`
	// Default: the div-by-zero VC fails.
	if err := run([]string{"verify", writeProg(t, src)}); err == nil {
		t.Error("unguarded division should fail verification")
	}
	// With -no-divzero it passes (nothing else to prove).
	if err := run([]string{"verify", "-no-divzero", writeProg(t, src)}); err != nil {
		t.Errorf("with -no-divzero: %v", err)
	}
}

func TestVerifyLoopInvariantProgram(t *testing.T) {
	src, err := os.ReadFile("../../examples/progs/contracts.bitc")
	if err != nil {
		t.Fatal(err)
	}
	out, rerr := capture(t, []string{"verify", writeProg(t, string(src))})
	if rerr != nil {
		t.Fatalf("verify failed: %v\n%s", rerr, out)
	}
	if !strings.Contains(out, "loop-invariant") {
		t.Errorf("invariant VCs missing: %s", out)
	}
}
