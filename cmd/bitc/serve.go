// bitc serve: the CLI front end of internal/serve — flag parsing, signal
// handling (SIGINT/SIGTERM trigger a graceful drain), the human-readable
// run report, and optional bitc-metrics/v1 export.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"bitc/internal/serve"
)

// runServe implements `bitc serve`. Output goes to out so tests can capture
// the report; the metrics file (when requested) is flushed even when the run
// is interrupted — that is part of the graceful-shutdown contract.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	shards := fs.Int("shards", 4, "number of account shards (one VM each)")
	users := fs.Int64("users", 10000, "simulated-user population (one account each)")
	rate := fs.Int("rate", 1000, "open-loop arrival rate (transactions per round)")
	duration := fs.Int("duration", 10, "rounds of traffic to generate before draining")
	batch := fs.Int("batch", 256, "transactions per shard batch")
	workers := fs.Int("workers", 8, "green threads per shard batch")
	queueCap := fs.Int("queue-cap", 0, "per-shard mailbox bound (0 = 4×batch)")
	coordinators := fs.Int("coordinators", 4, "parallel cross-shard 2PC coordinators")
	maxRetries := fs.Int("max-retries", 8, "2PC attempts before a cross-shard transfer is rejected")
	skew := fs.Float64("skew", 0, "hot-key probability in [0,1)")
	cross := fs.Float64("cross", 0, "cross-shard transfer fraction in [0,1]")
	seed := fs.Uint64("seed", 1, "deterministic seed for the generator and every shard scheduler")
	quantum := fs.Int("quantum", 64, "shard scheduler preemption interval")
	balance := fs.Int64("balance", 100, "initial balance per account")
	deterministic := fs.Bool("deterministic", false, "single-coordinator 2PC and no wall-clock fields (byte-reproducible output)")
	metricsOut := fs.String("metrics", "", "write a bitc-metrics/v1 JSON document here")
	smoke := fs.Bool("smoke", false, "CI preset: 4 shards, 10k transactions with cross-shard transfers, deterministic")
	emit := fs.String("emit-program", "", "print a generated bitc program instead of serving: shard (per-shard STM batch program) or twopc (2PC prepare-order model)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no source file (the shard program is built in)")
	}
	opts := serve.Options{
		Shards: *shards, Users: *users, Rate: *rate, Duration: *duration,
		Batch: *batch, Workers: *workers, QueueCap: *queueCap,
		Coordinators: *coordinators, MaxRetries: *maxRetries,
		Skew: *skew, Cross: *cross, Seed: *seed, Quantum: *quantum,
		InitialBalance: *balance, Deterministic: *deterministic,
	}
	if *emit != "" {
		src, err := serve.EmitProgram(*emit, opts)
		if err != nil {
			return err
		}
		_, err = io.WriteString(out, src)
		return err
	}
	if *smoke {
		// 5 rounds × 2000 tps = 10k transactions, 20% of them cross-shard.
		opts = serve.Options{
			Shards: 4, Users: 10000, Rate: 2000, Duration: 5,
			Skew: 0.2, Cross: 0.2, Seed: 1, Deterministic: true,
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serveWith(ctx, opts, *metricsOut, out)
}

// serveWith builds and runs the service, prints the report, writes metrics,
// and enforces the conservation invariant via the exit status.
func serveWith(ctx context.Context, opts serve.Options, metricsPath string, out io.Writer) error {
	sv, err := serve.New(opts)
	if err != nil {
		return err
	}
	eff := sv.Options()
	fmt.Fprintf(out, "[serve] %d shards × %d users, rate %d/round for %d rounds (cross %.2f, skew %.2f, seed %d)\n",
		eff.Shards, eff.Users, eff.Rate, eff.Duration, eff.Cross, eff.Skew, eff.Seed)
	res, err := sv.Run(ctx)
	if err != nil {
		return err
	}
	if res.Interrupted {
		fmt.Fprintf(out, "[serve] interrupted — drained in-flight transactions before exit\n")
	}
	fmt.Fprintf(out, "[serve] %d rounds: committed %d (+%d cross), rejected %d (+%d cross), 2PC conflicts %d\n",
		res.Rounds, res.Committed, res.CrossCommitted, res.Rejected, res.CrossRejected, res.Conflicts)
	fmt.Fprintf(out, "[serve] stm commits %d, aborts %d (%.4f abort rate); latency p50 %d p99 %d ticks\n",
		res.TxCommits, res.TxAborts, abortRate(res), res.P50Ticks, res.P99Ticks)
	if res.WallNS > 0 {
		fmt.Fprintf(out, "[serve] wall %.3fs, %.0f committed tx/s\n",
			float64(res.WallNS)/1e9, float64(res.Committed+res.CrossCommitted)/(float64(res.WallNS)/1e9))
	}
	if metricsPath != "" {
		if err := serve.MetricsDoc(res).WriteFile(metricsPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "[serve] metrics written to %s\n", metricsPath)
	}
	if !res.InvariantOK {
		return fmt.Errorf("serve: conservation violated: final balance %d, expected %d",
			res.FinalTotal, res.ExpectedTotal)
	}
	fmt.Fprintf(out, "[serve] conservation verified: %d accounts sum to %d\n", eff.Users, res.FinalTotal)
	return nil
}

func abortRate(res *serve.Result) float64 {
	den := res.TxAborts + res.TxCommits
	if den == 0 {
		return 0
	}
	return float64(res.TxAborts) / float64(den)
}
