package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bitc/internal/analysis"
	"bitc/internal/corpus"
)

// TestWatcherStep drives the -watch daemon's poll step directly: first run
// is cold and prints findings, an unchanged file is a no-op, an edit
// triggers a warm run that prints only the finding delta, and a broken
// parse is reported once without killing the loop.
func TestWatcherStep(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.bitc")
	metrics := filepath.Join(dir, "watch-metrics.json")
	base := corpus.Text(20, 5)
	writeAt := func(src string, sec int) {
		t.Helper()
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		// Pin distinct mtimes explicitly: consecutive writes can land
		// within the filesystem's timestamp granularity.
		mt := time.Now().Add(time.Duration(sec) * time.Second)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	writeAt(base, 0)

	var buf bytes.Buffer
	w := newWatcher(path, analyzeConfig{opts: analysis.Options{}, metrics: metrics}, &buf)

	ran, err := w.step(false)
	if err != nil || !ran {
		t.Fatalf("first step: ran=%v err=%v", ran, err)
	}
	if !strings.Contains(buf.String(), "run 1 (cold)") {
		t.Fatalf("first run not reported cold:\n%s", buf.String())
	}

	ran, err = w.step(false)
	if err != nil || ran {
		t.Fatalf("unchanged file should not re-analyze: ran=%v err=%v", ran, err)
	}

	buf.Reset()
	writeAt(base+"(define (wzz (x int64)) int64\n  (let ((u 1)) x))\n", 2)
	ran, err = w.step(false)
	if err != nil || !ran {
		t.Fatalf("edited step: ran=%v err=%v", ran, err)
	}
	out := buf.String()
	if !strings.Contains(out, "run 2 (warm)") {
		t.Fatalf("second run not reported warm:\n%s", out)
	}
	if !strings.Contains(out, "+ ") || !strings.Contains(out, "BITC-DEAD002") {
		t.Fatalf("finding delta not printed:\n%s", out)
	}

	// A broken parse is printed once; repeating the poll on the same bad
	// file stays silent, and the daemon survives to analyze the next fix.
	buf.Reset()
	writeAt("(define (broken", 4)
	if ran, err = w.step(false); err != nil || ran {
		t.Fatalf("broken parse: ran=%v err=%v", ran, err)
	}
	if !strings.Contains(buf.String(), "[watch]") {
		t.Fatalf("parse error not reported:\n%s", buf.String())
	}
	buf.Reset()
	if ran, err = w.step(false); err != nil || ran || buf.Len() != 0 {
		t.Fatalf("repeated bad poll should be silent: ran=%v err=%v out=%q", ran, err, buf.String())
	}
	writeAt(base, 6)
	if ran, err = w.step(false); err != nil || !ran {
		t.Fatalf("recovery step: ran=%v err=%v", ran, err)
	}
	if !strings.Contains(buf.String(), "- ") {
		t.Fatalf("removed-finding delta not printed after revert:\n%s", buf.String())
	}

	mb, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("metrics file not written: %v", err)
	}
	ms := string(mb)
	for _, want := range []string{"bitc-metrics/v1", `"cold"`, `"warm"`, "analysisNs", "cacheHits"} {
		if !strings.Contains(ms, want) {
			t.Fatalf("metrics file missing %q:\n%s", want, ms)
		}
	}
}

// TestWatcherKeepRuns pins the -keep-runs retention window: with a short
// window, facts belonging to definitions that disappeared from the file are
// evicted after that many runs; with the default window the same edit
// sequence evicts nothing.
func TestWatcherKeepRuns(t *testing.T) {
	progA := corpus.Text(20, 5)
	progB := corpus.Text(20, 11) // disjoint definitions: A's facts go stale

	run := func(keepRuns uint64) (evicted uint64, entries int) {
		t.Helper()
		dir := t.TempDir()
		path := filepath.Join(dir, "k.bitc")
		writeAt := func(src string, sec int) {
			t.Helper()
			if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
			mt := time.Now().Add(time.Duration(sec) * time.Second)
			if err := os.Chtimes(path, mt, mt); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		w := newWatcher(path, analyzeConfig{opts: analysis.Options{}, keepRuns: keepRuns}, &buf)
		writeAt(progA, 0)
		for i := 1; i <= 3; i++ {
			if i > 1 {
				writeAt(progB, 2*i)
			}
			if ran, err := w.step(false); err != nil || !ran {
				t.Fatalf("run %d: ran=%v err=%v", i, ran, err)
			}
		}
		st := w.store.Stats()
		return st.Evicted, st.Entries
	}

	evShort, entShort := run(1)
	if evShort == 0 {
		t.Fatal("keep-runs=1 evicted nothing after the old program's facts went stale")
	}
	evDefault, entDefault := run(0) // 0 falls back to the default window (8)
	if evDefault != 0 {
		t.Fatalf("default window evicted %d entries within 3 runs", evDefault)
	}
	if entShort >= entDefault {
		t.Fatalf("short window retained %d entries, default %d — eviction had no effect", entShort, entDefault)
	}
}

// TestVerifyCacheMode exercises the -verify-cache gate end to end on a
// program with findings.
func TestVerifyCacheMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.bitc")
	src := corpus.Text(40, 8) + "(define (wzz (x int64)) int64\n  (let ((u 1)) x))\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := verifyCache(path, src, analyzeConfig{opts: analysis.Options{}}); err != nil {
		t.Fatalf("verify-cache failed on a clean program: %v", err)
	}
}

// TestWatcherAtomDelta drives the poll step through an edit that strips the
// atomic wrapper off a shared write: the warm rerun must print the new
// BITC-ATOM001 finding as a `+` delta, and reverting the edit must retire
// it with a `-` delta — the daemon-facing contract for the transaction
// checkers.
func TestWatcherAtomDelta(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.bitc")
	clean := `
(defstruct cell (v int64))
(define counter cell (make cell :v 0))
(define (txn) unit
  (atomic (set-field! counter v (+ (field counter v) 1))))
(define (poke) unit
  (atomic (set-field! counter v 5)))
(define (main) unit
  (let ((t (spawn (txn)))) (poke) (join t)))
`
	bare := strings.Replace(clean,
		"(atomic (set-field! counter v 5))", "(set-field! counter v 5)", 1)
	writeAt := func(src string, sec int) {
		t.Helper()
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		mt := time.Now().Add(time.Duration(sec) * time.Second)
		if err := os.Chtimes(path, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	writeAt(clean, 0)

	var buf bytes.Buffer
	w := newWatcher(path, analyzeConfig{opts: analysis.Options{}}, &buf)
	if ran, err := w.step(false); err != nil || !ran {
		t.Fatalf("cold step: ran=%v err=%v", ran, err)
	}
	if strings.Contains(buf.String(), "BITC-ATOM") {
		t.Fatalf("clean program already carries ATOM findings:\n%s", buf.String())
	}

	buf.Reset()
	writeAt(bare, 2)
	if ran, err := w.step(false); err != nil || !ran {
		t.Fatalf("edited step: ran=%v err=%v", ran, err)
	}
	out := buf.String()
	if !strings.Contains(out, "run 2 (warm)") {
		t.Fatalf("edited run not served warm:\n%s", out)
	}
	if !strings.Contains(out, "+ ") || !strings.Contains(out, "BITC-ATOM001") {
		t.Fatalf("new ATOM001 finding not printed as a delta:\n%s", out)
	}

	buf.Reset()
	writeAt(clean, 4)
	if ran, err := w.step(false); err != nil || !ran {
		t.Fatalf("revert step: ran=%v err=%v", ran, err)
	}
	out = buf.String()
	if !strings.Contains(out, "- ") || !strings.Contains(out, "BITC-ATOM001") {
		t.Fatalf("retired ATOM001 finding not printed as a `-` delta:\n%s", out)
	}
}
