// Command bitc is the driver for the bitc toolchain: type-check, run,
// verify, analyse, and inspect bitc programs.
//
// Usage:
//
//	bitc check <file>            type-check only
//	bitc run [-boxed] [-contracts] [-seed N] <file>
//	                             compile and execute main
//	bitc verify <file>           generate + discharge verification conditions
//	bitc analyze <file>          region-escape and race analyses
//	bitc dump-ir <file>          print the optimised IR
//	bitc dump-layout <file>      print struct layouts (packed/natural/boxed)
//	bitc fmt <file>              print the normalised program
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"bitc/internal/ast"
	"bitc/internal/core"
	"bitc/internal/layout"
	"bitc/internal/opt"
	"bitc/internal/verify"
	"bitc/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bitc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: bitc <check|run|verify|analyze|dump-ir|dump-layout|fmt|repl> [flags] <file>")
	}
	cmd, rest := args[0], args[1:]

	if cmd == "repl" {
		return repl(os.Stdin, os.Stdout)
	}

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	boxed := fs.Bool("boxed", false, "execute under the uniform boxed representation")
	contracts := fs.Bool("contracts", false, "compile contracts into runtime checks")
	seed := fs.Uint64("seed", 0, "deterministic scheduler seed")
	quantum := fs.Int("quantum", 64, "instructions between preemption points")
	olevel := fs.Int("O", 2, "optimisation level (0..2)")
	entry := fs.String("entry", "main", "entry function for run")
	noBounds := fs.Bool("no-bounds", false, "verify: skip vector bounds obligations")
	noDivZero := fs.Bool("no-divzero", false, "verify: skip division-by-zero obligations")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("%s needs exactly one source file", cmd)
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}

	cfg := core.Config{
		Optimize:      opt.Level(*olevel),
		EmitContracts: *contracts,
		Seed:          *seed,
		Quantum:       *quantum,
		Stdout:        os.Stdout,
	}
	if *boxed {
		cfg.Mode = vm.Boxed
	}
	prog, err := core.Load(path, string(src), cfg)
	if err != nil {
		return err
	}

	switch cmd {
	case "check":
		fmt.Printf("%s: %d definitions OK (%d functions compiled)\n",
			path, len(prog.AST.Defs), len(prog.Module.Funcs))
		return nil

	case "run":
		val, machine, err := prog.RunFunc(*entry)
		if err != nil {
			return err
		}
		fmt.Printf("=> %s\n", val.String())
		s := machine.Stats
		fmt.Printf("[%s] instrs=%d calls=%d allocs=%d heap=%dB boxes=%d switches=%d\n",
			machine.Mode(), s.Instrs, s.Calls, s.Allocs, s.HeapBytes, s.BoxAllocs, s.Switches)
		return nil

	case "verify":
		vopts := verify.Options{CheckBounds: !*noBounds, CheckDivZero: !*noDivZero}
		rep := prog.Verify(vopts)
		for _, vc := range rep.VCs {
			status := "PROVED"
			if !vc.Result.Proved {
				status = "FAILED"
			}
			fmt.Printf("%-7s [%s] %s: %s (%s)\n", status, vc.Kind, vc.Func, vc.Desc, vc.Result.Duration)
			if !vc.Result.Proved {
				fmt.Printf("        counterexample facts: %v\n", vc.Result.Counterexample)
			}
		}
		fmt.Println(rep.Summary())
		if rep.Failed > 0 {
			return fmt.Errorf("%d verification conditions failed", rep.Failed)
		}
		return nil

	case "analyze":
		escapes := prog.CheckRegions()
		for _, e := range escapes {
			fmt.Println("region-escape:", e)
		}
		races := prog.Races()
		for _, r := range races.Races {
			fmt.Println("race:", r)
		}
		fmt.Printf("%d region escapes, %d potential races (%d shared accesses)\n",
			len(escapes), len(races.Races), len(races.Accesses))
		return nil

	case "dump-ir":
		fmt.Print(prog.DumpIR())
		return nil

	case "dump-layout":
		names := make([]string, 0, len(prog.Info.Structs))
		for name := range prog.Info.Structs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			for _, mode := range []layout.Mode{layout.Natural, layout.Packed, layout.Boxed} {
				l, lerr := prog.LayoutOf(name, mode)
				if lerr != nil {
					return lerr
				}
				fmt.Print(l.Describe())
			}
		}
		unames := make([]string, 0, len(prog.Info.Unions))
		for name := range prog.Info.Unions {
			unames = append(unames, name)
		}
		sort.Strings(unames)
		for _, name := range unames {
			ul, lerr := layout.OfUnion(prog.Info.Unions[name], layout.Natural)
			if lerr != nil {
				return lerr
			}
			fmt.Printf("union %s: size=%d align=%d tag=%dB arms=%d\n",
				name, ul.Size, ul.Align, ul.TagSize, len(ul.Arms))
		}
		return nil

	case "fmt":
		fmt.Println(ast.PrintProgram(prog.AST))
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}
