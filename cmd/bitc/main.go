// Command bitc is the driver for the bitc toolchain: type-check, run,
// verify, analyse, and inspect bitc programs.
//
// Usage:
//
//	bitc check <file>            type-check only
//	bitc run [-boxed] [-contracts] [-seed N] [-profile cpu|alloc]
//	         [-dispatch fused|specialized|switch] [-trace out.json]
//	         [-top N] [-deterministic] [-bounds-elide] <file>
//	                             compile and execute main; optionally collect
//	                             a profile and/or a Perfetto-loadable trace.
//	                             -bounds-elide runs the relational bounds
//	                             prover at load time and drops the VM's
//	                             bounds checks at proven sites (identical
//	                             observable behaviour, fewer compares)
//	bitc top [-profile cpu|alloc] [-top N] <file>
//	                             run and print only the flat/cumulative
//	                             profile report
//	bitc verify <file>           generate + discharge verification conditions
//	bitc analyze [-json] [-enable LIST] [-disable LIST] [-severity S]
//	             [-watch [-interval D] [-metrics out.json] [-keep-runs N]]
//	             [-verify-cache] [-warm] <file>
//	                             run the unified static-analysis suite;
//	                             exits 1 if any error-severity finding.
//	                             -watch re-analyzes on change over a shared
//	                             incremental fact store and prints finding
//	                             deltas; -verify-cache checks warm == cold;
//	                             -warm renders a primed-cache re-analysis
//	bitc analyzers [-codes]      list registered analyzers (with -codes, print
//	                             just the BITC lint codes, one per line)
//	bitc serve [-shards N] [-users N] [-rate N] [-duration N] [-skew F]
//	           [-cross F] [-seed N] [-deterministic] [-metrics out.json]
//	           [-smoke] [-emit-program shard|twopc]
//	                             run the sharded STM transaction service
//	                             (internal/serve) under open-loop load and
//	                             report throughput, abort rate, and latency;
//	                             SIGINT/SIGTERM drains in-flight work before
//	                             exiting. -smoke is the fixed CI preset;
//	                             -emit-program prints a generated bitc
//	                             program (for self-analysis) and exits.
//	bitc dump-ir <file>          print the optimised IR
//	bitc disasm [-dispatch M] [-func NAME] <file>
//	                             print the decoded/fused dispatch listing
//	                             (see docs/vm.md) for one function or all
//	bitc dump-layout <file>      print struct layouts (packed/natural/boxed)
//	bitc fmt <file>              print the normalised program
//
// Analyzers (select with -enable/-disable; codes appear in findings):
//
//	atomicity  BITC-ATOM001..004  shared writes outside atomic regions,
//	                              irreversible effects inside atomics,
//	                              descending 2PC prepare order, nested
//	                              atomics and unbounded retry loops
//	bounds     BITC-BOUND001/002  relational vector-bounds verification:
//	                              provably out-of-range accesses (error) and
//	                              the undischarged remainder (under -strict)
//	deadlock   BITC-DLOCK001/002  lock-order cycles, re-entrant acquisition
//	deadstore  BITC-DEAD001/002   dead (alias-aware) stores, unused bindings
//	definit    BITC-INIT001       mutable locals read before first set!
//	escape     BITC-ESCAPE001/002 region values outliving their region;
//	                              uses after a region definitely exited
//	ffi        BITC-FFI001..003,  C-ABI boundary violations; PROV001 flags
//	           BITC-PROV001       capability-narrowing casts whose value
//	                              range exceeds the declared foreign window
//	race       BITC-RACE001       lockset data races (through aliases too)
//	truncate   BITC-TRUNC001/002  casts that can lose bits
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"bitc/internal/analysis"
	"bitc/internal/ast"
	"bitc/internal/core"
	"bitc/internal/layout"
	"bitc/internal/obs"
	"bitc/internal/opt"
	"bitc/internal/source"
	"bitc/internal/verify"
	"bitc/internal/vm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bitc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: bitc <check|run|top|verify|analyze|analyzers|serve|dump-ir|disasm|dump-layout|fmt|repl> [flags] <file>\n(try `bitc analyze -h` for the static-analysis suite and its lint codes)")
	}
	cmd, rest := args[0], args[1:]

	if cmd == "repl" {
		return repl(os.Stdin, os.Stdout)
	}
	if cmd == "analyzers" {
		return listAnalyzers(rest)
	}
	if cmd == "serve" {
		// serve takes no source file: the shard program is generated
		// internally (see internal/serve).
		return runServe(rest, os.Stdout)
	}

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	boxed := fs.Bool("boxed", false, "execute under the uniform boxed representation")
	dispatch := fs.String("dispatch", "fused", "interpreter dispatch strategy (fused|specialized|switch)")
	disasmFunc := fs.String("func", "", "disasm: function to list (default: all)")
	contracts := fs.Bool("contracts", false, "compile contracts into runtime checks")
	seed := fs.Uint64("seed", 0, "deterministic scheduler seed")
	quantum := fs.Int("quantum", 0, "instructions between preemption points (0 = VM default, 64)")
	olevel := fs.Int("O", 2, "optimisation level (0..2)")
	entry := fs.String("entry", "main", "entry function for run")
	noBounds := fs.Bool("no-bounds", false, "verify: skip vector bounds obligations")
	noDivZero := fs.Bool("no-divzero", false, "verify: skip division-by-zero obligations")
	jsonOut := fs.Bool("json", false, "analyze: shorthand for -format json")
	format := fs.String("format", "", "analyze: output format (pretty|json|sarif)")
	strict := fs.Bool("strict", false, "analyze: list findings muted by suppress forms / bitc:ignore comments")
	enable := fs.String("enable", "", "analyze: comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "analyze: comma-separated analyzers to skip")
	minSev := fs.String("severity", "note", "analyze: minimum severity to report (note|warning|error)")
	watch := fs.Bool("watch", false, "analyze: re-analyze on change (polling daemon over an incremental fact store)")
	interval := fs.Duration("interval", 500*time.Millisecond, "analyze: -watch poll interval")
	metricsOut := fs.String("metrics", "", "analyze: -watch maintains a bitc-metrics/v1 JSON file here (cold/warm analysisNs)")
	keepRuns := fs.Uint64("keep-runs", 8, "analyze: -watch evicts cached facts untouched for this many runs")
	verifyCacheFlag := fs.Bool("verify-cache", false, "analyze: check that a warm cached run renders byte-identically to a cold run, then exit")
	warm := fs.Bool("warm", false, "analyze: render a warm re-analysis from a primed fact store (the daemon's code path)")
	profile := fs.String("profile", "", "run/top: collect a profile along this dimension (cpu|alloc)")
	tracePath := fs.String("trace", "", "run: write a Chrome trace_event JSON file (load in Perfetto or chrome://tracing)")
	topN := fs.Int("top", 10, "run/top: number of functions shown in the profile report")
	deterministic := fs.Bool("deterministic", false, "run/top: omit wall-clock fields so observability output is byte-reproducible")
	boundsElide := fs.Bool("bounds-elide", false, "run/top/disasm: statically prove vector bounds and elide the VM's checks at discharged sites")
	if cmd == "analyze" {
		fs.Usage = func() {
			fmt.Fprintln(os.Stderr, "usage: bitc analyze [-format pretty|json|sarif] [-strict] [-enable LIST] [-disable LIST] [-severity S] <file>")
			fmt.Fprintln(os.Stderr, "exit status: 1 when any error-severity finding is reported")
			fs.PrintDefaults()
			fmt.Fprintln(os.Stderr, "\navailable analyzers:")
			for _, a := range analysis.Registry() {
				fmt.Fprintf(os.Stderr, "  %-10s %-34s %s\n", a.Name, strings.Join(a.Codes, ","), a.Doc)
			}
		}
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("%s needs exactly one source file", cmd)
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}

	// analyze never needs compiled code: it parses + type-checks only
	// (core.LoadAnalysis) and dispatches to the one-shot, -warm,
	// -verify-cache, or -watch driver in watch.go.
	if cmd == "analyze" {
		opts := analysis.Options{Strict: *strict}
		if *enable != "" {
			opts.Enable = strings.Split(*enable, ",")
		}
		if *disable != "" {
			opts.Disable = strings.Split(*disable, ",")
		}
		switch *minSev {
		case "note":
			opts.MinSeverity = source.Note
		case "warning":
			opts.MinSeverity = source.Warning
		case "error":
			opts.MinSeverity = source.Error
		default:
			return fmt.Errorf("unknown -severity %q (want note, warning, or error)", *minSev)
		}
		outFormat := *format
		if outFormat == "" {
			if *jsonOut {
				outFormat = "json"
			} else {
				outFormat = "pretty"
			}
		}
		return runAnalyze(path, string(src), analyzeConfig{
			opts:     opts,
			format:   outFormat,
			watch:    *watch,
			interval: *interval,
			metrics:  *metricsOut,
			verify:   *verifyCacheFlag,
			warm:     *warm,
			keepRuns: *keepRuns,
		})
	}

	cfg := core.Config{
		Optimize:      opt.Level(*olevel),
		EmitContracts: *contracts,
		Seed:          *seed,
		Quantum:       *quantum,
		Stdout:        os.Stdout,
		BoundsElide:   *boundsElide,
	}
	if *boxed {
		cfg.Mode = vm.Boxed
	}
	switch *dispatch {
	case "fused":
		cfg.Dispatch = vm.DispatchFused
	case "specialized":
		cfg.Dispatch = vm.DispatchSpecialized
	case "switch":
		cfg.Dispatch = vm.DispatchSwitch
	default:
		return fmt.Errorf("unknown -dispatch %q (want fused, specialized, or switch)", *dispatch)
	}

	dim, err := parseProfile(*profile)
	if err != nil {
		return err
	}
	var rec *obs.Recorder
	if cmd == "top" || (cmd == "run" && (*profile != "" || *tracePath != "")) {
		rec = vm.NewRecorder(obs.Options{
			Trace:         *tracePath != "",
			Deterministic: *deterministic,
		})
		cfg.Observer = rec
	}

	prog, err := core.Load(path, string(src), cfg)
	if err != nil {
		return err
	}

	switch cmd {
	case "check":
		fmt.Printf("%s: %d definitions OK (%d functions compiled)\n",
			path, len(prog.AST.Defs), len(prog.Module.Funcs))
		return nil

	case "run":
		val, machine, err := prog.RunFunc(*entry)
		if err != nil {
			return err
		}
		fmt.Printf("=> %s\n", val.String())
		s := machine.Stats
		fmt.Printf("[%s] instrs=%d calls=%d allocs=%d heap=%dB boxes=%d switches=%d ic=%d/%d\n",
			machine.Mode(), s.Instrs, s.Calls, s.Allocs, s.HeapBytes, s.BoxAllocs, s.Switches, s.ICHits, s.ICMisses)
		if prog.Proofs != nil {
			fmt.Printf("[bounds] %d/%d vector-access sites proven in range, checks elided\n",
				prog.Proofs.Proved, prog.Proofs.Sites)
		}
		return finishObs(rec, dim, *profile != "", *tracePath, *topN)

	case "top":
		if _, _, err := prog.RunFunc(*entry); err != nil {
			return err
		}
		rec.Finish()
		return rec.WriteReport(os.Stdout, dim, *topN)

	case "verify":
		vopts := verify.Options{CheckBounds: !*noBounds, CheckDivZero: !*noDivZero}
		rep := prog.Verify(vopts)
		for _, vc := range rep.VCs {
			status := "PROVED"
			if !vc.Result.Proved {
				status = "FAILED"
			}
			fmt.Printf("%-7s [%s] %s: %s (%s)\n", status, vc.Kind, vc.Func, vc.Desc, vc.Result.Duration)
			if !vc.Result.Proved {
				fmt.Printf("        counterexample facts: %v\n", vc.Result.Counterexample)
			}
		}
		fmt.Println(rep.Summary())
		if rep.Failed > 0 {
			return fmt.Errorf("%d verification conditions failed", rep.Failed)
		}
		return nil

	case "dump-ir":
		fmt.Print(prog.DumpIR())
		return nil

	case "disasm":
		machine := prog.NewVM()
		names := []string{*disasmFunc}
		if *disasmFunc == "" {
			names = names[:0]
			for _, f := range prog.Module.Funcs {
				names = append(names, f.Name)
			}
		}
		for i, name := range names {
			listing, derr := machine.DisasmFunc(name)
			if derr != nil {
				return derr
			}
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(listing)
		}
		return nil

	case "dump-layout":
		names := make([]string, 0, len(prog.Info.Structs))
		for name := range prog.Info.Structs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			for _, mode := range []layout.Mode{layout.Natural, layout.Packed, layout.Boxed} {
				l, lerr := prog.LayoutOf(name, mode)
				if lerr != nil {
					return lerr
				}
				fmt.Print(l.Describe())
			}
		}
		unames := make([]string, 0, len(prog.Info.Unions))
		for name := range prog.Info.Unions {
			unames = append(unames, name)
		}
		sort.Strings(unames)
		for _, name := range unames {
			ul, lerr := layout.OfUnion(prog.Info.Unions[name], layout.Natural)
			if lerr != nil {
				return lerr
			}
			fmt.Printf("union %s: size=%d align=%d tag=%dB arms=%d\n",
				name, ul.Size, ul.Align, ul.TagSize, len(ul.Arms))
		}
		return nil

	case "fmt":
		fmt.Println(ast.PrintProgram(prog.AST))
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// parseProfile maps the -profile flag to a report dimension. The empty
// string selects CPU so -trace without -profile still records sensibly.
func parseProfile(s string) (obs.Profile, error) {
	switch s {
	case "", "cpu":
		return obs.ProfileCPU, nil
	case "alloc":
		return obs.ProfileAlloc, nil
	default:
		return obs.ProfileCPU, fmt.Errorf("unknown -profile %q (want cpu or alloc)", s)
	}
}

// finishObs settles the recorder after a run and writes whatever outputs
// were requested: a Chrome trace file and/or a profile report on stdout.
func finishObs(rec *obs.Recorder, dim obs.Profile, report bool, tracePath string, topN int) error {
	if rec == nil {
		return nil
	}
	rec.Finish()
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: wrote %d events to %s (%d dropped)\n",
			len(rec.Events()), tracePath, rec.Dropped())
	}
	if report {
		fmt.Println()
		return rec.WriteReport(os.Stdout, dim, topN)
	}
	return nil
}

// listAnalyzers implements `bitc analyzers`: the human-readable registry
// listing, or (with -codes) the machine-readable lint-code inventory that
// scripts/docs-check.sh diffs against docs/lint-codes.md.
func listAnalyzers(args []string) error {
	fs := flag.NewFlagSet("analyzers", flag.ContinueOnError)
	codes := fs.Bool("codes", false, "print just the BITC lint codes, one per line")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("analyzers takes no file arguments")
	}
	if *codes {
		var all []string
		for _, a := range analysis.Registry() {
			all = append(all, a.Codes...)
		}
		sort.Strings(all)
		for _, c := range all {
			fmt.Println(c)
		}
		return nil
	}
	for _, a := range analysis.Registry() {
		fmt.Printf("%-10s %-34s %s\n", a.Name, strings.Join(a.Codes, ","), a.Doc)
	}
	return nil
}
