package main

import (
	"strings"
	"testing"
)

func replSession(t *testing.T, input string) string {
	t.Helper()
	var out strings.Builder
	if err := repl(strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestReplEvaluatesExpressions(t *testing.T) {
	out := replSession(t, "(+ 40 2)\n:quit\n")
	if !strings.Contains(out, "42") {
		t.Errorf("output = %q", out)
	}
}

func TestReplAccumulatesDefinitions(t *testing.T) {
	out := replSession(t, `(define (sq (x int64)) int64 (* x x))
(sq 9)
:quit
`)
	if !strings.Contains(out, "defined") || !strings.Contains(out, "81") {
		t.Errorf("output = %q", out)
	}
}

func TestReplStructsAndState(t *testing.T) {
	out := replSession(t, `(defstruct p (x int64))
(field (make p :x 7) x)
:quit
`)
	if !strings.Contains(out, "7") {
		t.Errorf("output = %q", out)
	}
}

func TestReplRejectsBadDefinitionWithoutPoisoning(t *testing.T) {
	out := replSession(t, `(define (bad) int64 "not an int")
(+ 1 2)
:quit
`)
	if !strings.Contains(out, "error:") {
		t.Errorf("bad definition accepted: %q", out)
	}
	if !strings.Contains(out, "3") {
		t.Errorf("session poisoned after rejected definition: %q", out)
	}
}

func TestReplMultiLineInput(t *testing.T) {
	out := replSession(t, `(define (fact (n int64)) int64
  (if (= n 0)
      1
      (* n (fact (- n 1)))))
(fact 5)
:quit
`)
	if !strings.Contains(out, "120") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "...") {
		t.Errorf("continuation prompt missing: %q", out)
	}
}

func TestReplTrapReported(t *testing.T) {
	out := replSession(t, "(/ 1 0)\n:quit\n")
	if !strings.Contains(out, "division by zero") {
		t.Errorf("output = %q", out)
	}
}

func TestReplCommands(t *testing.T) {
	out := replSession(t, `(define x int64 5)
:defs
:reset
:defs
:quit
`)
	if !strings.Contains(out, "(define x int64 5)") {
		t.Errorf(":defs missing definition: %q", out)
	}
	if !strings.Contains(out, "session cleared") {
		t.Errorf(":reset missing: %q", out)
	}
}

func TestReplPrintSideEffects(t *testing.T) {
	out := replSession(t, `(println "hello repl")
:quit
`)
	if !strings.Contains(out, "hello repl") {
		t.Errorf("output = %q", out)
	}
}

func TestBalancedHelper(t *testing.T) {
	cases := map[string]bool{
		"(+ 1 2)":      true,
		"(+ 1":         false,
		`"(unclosed"`:  true, // paren inside string doesn't count
		"; (comment\n": true,
		"(f \"a)b\")":  true,
		"(a (b (c)))":  true,
		"(a [b)":       false,
		"())":          true, // over-closed still submits (parser reports)
	}
	for text, want := range cases {
		if got := balanced(text); got != want {
			t.Errorf("balanced(%q) = %v, want %v", text, got, want)
		}
	}
}
