package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"

	"bitc/internal/obs"
	"bitc/internal/serve"
)

// TestServeSmoke runs the CI preset through the real flag path and checks
// the conservation line and clean exit.
func TestServeSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := runServe([]string{"-smoke"}, &buf); err != nil {
		t.Fatalf("smoke run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "conservation verified") {
		t.Fatalf("no conservation line:\n%s", out)
	}
	if strings.Contains(out, "interrupted") {
		t.Fatalf("smoke run reported an interruption:\n%s", out)
	}
}

// TestServeRejectsFileArg pins the CLI contract: serve has no source file.
func TestServeRejectsFileArg(t *testing.T) {
	err := runServe([]string{"x.bitc"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "no source file") {
		t.Fatalf("err = %v, want no-source-file error", err)
	}
}

// TestServeCancelFlushesMetrics cancels a run mid-traffic and checks the
// graceful-shutdown contract at the CLI layer: the run drains, the metrics
// file is still written, and it records a conserving final state.
func TestServeCancelFlushesMetrics(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "serve.json")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	opts := serve.Options{Shards: 2, Users: 500, Rate: 500, Duration: 1000, Cross: 0.2, Seed: 4}
	if err := serveWith(ctx, opts, metrics, &buf); err != nil {
		t.Fatalf("cancelled run errored: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "interrupted") {
		t.Fatalf("no interruption notice:\n%s", buf.String())
	}
	doc, err := obs.ReadMetricsFile(metrics)
	if err != nil {
		t.Fatalf("metrics not flushed on cancel: %v", err)
	}
	total := doc.Rows[len(doc.Rows)-1]
	if total.Mode != "total" || total.Derived["invariantOK"] != 1 {
		t.Fatalf("flushed metrics missing a conserving total row: %+v", total)
	}
}

// signalOnFirstWrite releases its channel once the command under test has
// produced output — by which point the signal handler is installed, so a
// SIGTERM sent afterwards is guaranteed to hit the graceful path.
type signalOnFirstWrite struct {
	buf   bytes.Buffer
	once  sync.Once
	ready chan struct{}
	mu    sync.Mutex
}

func (w *signalOnFirstWrite) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.once.Do(func() { close(w.ready) })
	return w.buf.Write(p)
}

func (w *signalOnFirstWrite) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeSIGTERMDrains sends a real SIGTERM to the test process while
// `bitc serve` is mid-run and checks the daemon drains in-flight
// transactions, flushes metrics, and exits cleanly with the invariant
// intact — the end-to-end graceful-shutdown path.
func TestServeSIGTERMDrains(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "sigterm.json")
	w := &signalOnFirstWrite{ready: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		// A run far too long to finish on its own: only the signal ends it.
		done <- runServe([]string{
			"-shards", "4", "-users", "2000", "-rate", "400",
			"-duration", "1000000", "-cross", "0.2", "-seed", "6",
			"-metrics", metrics,
		}, w)
	}()
	<-w.ready // banner printed → signal.NotifyContext is armed
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("SIGTERM run errored: %v\n%s", err, w.String())
	}
	out := w.String()
	if !strings.Contains(out, "interrupted — drained") {
		t.Fatalf("no drain notice:\n%s", out)
	}
	if !strings.Contains(out, "conservation verified") {
		t.Fatalf("conservation not verified after SIGTERM:\n%s", out)
	}
	if _, err := obs.ReadMetricsFile(metrics); err != nil {
		t.Fatalf("metrics not flushed after SIGTERM: %v", err)
	}
}
