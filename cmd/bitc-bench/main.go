// Command bitc-bench regenerates the experiment tables E1–E8 that reproduce
// the quantitative claims of Shapiro's PLOS 2006 paper (see DESIGN.md for the
// claim↔experiment mapping and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	bitc-bench            run every experiment at full scale
//	bitc-bench -e E3      run one experiment
//	bitc-bench -quick     test-suite sized workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"bitc/internal/bench"
)

func main() {
	exp := flag.String("e", "", "run a single experiment (E1..E8, A1..A4)")
	quick := flag.Bool("quick", false, "small workloads (what the test suite runs)")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations A1..A4")
	flag.Parse()

	params := bench.Full
	if *quick {
		params = bench.Quick
	}

	run := func(e bench.Experiment) {
		fmt.Printf("\n##### %s — %s\n", e.ID, e.Title)
		for _, t := range e.Run(params) {
			fmt.Println(t.String())
		}
	}

	if *exp != "" {
		e := bench.ByID(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "bitc-bench: no experiment %q (have E1..E8)\n", *exp)
			os.Exit(1)
		}
		run(*e)
		return
	}
	exps := bench.All()
	if *ablations {
		exps = bench.AllWithAblations()
	}
	for _, e := range exps {
		run(e)
	}
}
