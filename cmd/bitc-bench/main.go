// Command bitc-bench regenerates the experiment tables E1–E9 that reproduce
// the quantitative claims of Shapiro's PLOS 2006 paper (see DESIGN.md for the
// claim↔experiment mapping and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	bitc-bench            run every experiment at full scale
//	bitc-bench -e E3      run one experiment
//	bitc-bench -quick     test-suite sized workloads
//	bitc-bench -metrics DIR [-deterministic]
//	                      write BENCH_<id>.json trajectory files
//	                      (bitc-metrics/v1 schema) instead of tables
package main

import (
	"flag"
	"fmt"
	"os"

	"bitc/internal/bench"
	"bitc/internal/obs"
)

func main() {
	exp := flag.String("e", "", "run a single experiment (E1..E9, A1..A4)")
	quick := flag.Bool("quick", false, "small workloads (what the test suite runs)")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations A1..A4")
	metricsDir := flag.String("metrics", "", "write BENCH_<id>.json metrics files into this directory")
	deterministic := flag.Bool("deterministic", false, "metrics: zero wall-clock fields for byte-reproducible output")
	flag.Parse()

	params := bench.Full
	if *quick {
		params = bench.Quick
	}

	if *metricsDir != "" {
		ids := bench.MetricsExperiments()
		if *exp != "" {
			ids = []string{*exp}
		}
		for _, id := range ids {
			doc, err := bench.CollectMetrics(id, params, *deterministic)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bitc-bench:", err)
				os.Exit(1)
			}
			path := obs.MetricsPath(*metricsDir, id)
			if err := doc.WriteFile(path); err != nil {
				fmt.Fprintln(os.Stderr, "bitc-bench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d rows)\n", path, len(doc.Rows))
		}
		return
	}

	run := func(e bench.Experiment) {
		fmt.Printf("\n##### %s — %s\n", e.ID, e.Title)
		for _, t := range e.Run(params) {
			fmt.Println(t.String())
		}
	}

	if *exp != "" {
		e := bench.ByID(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "bitc-bench: no experiment %q (have E1..E9)\n", *exp)
			os.Exit(1)
		}
		run(*e)
		return
	}
	exps := bench.All()
	if *ablations {
		exps = bench.AllWithAblations()
	}
	for _, e := range exps {
		run(e)
	}
}
