// Command bitc-gencorpus emits a deterministic synthetic bitc program for
// benchmarking the incremental analysis driver at monorepo scale. It is a
// thin wrapper over internal/corpus (see that package for the corpus
// shape); `scripts/gen-corpus.sh` is the shell entry point.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"bitc/internal/corpus"
)

func main() {
	funcs := flag.Int("funcs", 100000, "approximate number of functions to generate")
	cluster := flag.Int("cluster", 25, "functions per cluster (call-chain depth)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := bufio.NewWriterSize(os.Stdout, 1<<20)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bitc-gencorpus:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriterSize(f, 1<<20)
	}
	corpus.Generate(w, *funcs, *cluster)
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "bitc-gencorpus:", err)
		os.Exit(1)
	}
}
